package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domain"
	"repro/internal/query"
)

// shardOutcome is one shard's contribution to a scattered session.
type shardOutcome struct {
	rows       []query.ResultRow
	spent      crowd.Cost
	asked      int64
	saved      int64
	pruned     int64
	skipped    int64
	reused     int64
	savedMills int64
}

// executeSharded is the scatter-gather path of Tier.Execute: the
// partitioner splits the evaluation set by object ID, one plan build (or
// cache hit) serves every shard, and each shard runs the compiled online
// evaluation on a private COW session of its backend. Shards partition
// objects, never answers: every (object, attribute) answer stream is
// consumed by exactly one shard from cursor zero, so per-object
// estimates are bit-equal to the unsharded run and the summed online
// spend matches to the mill.
//
// Determinism caveat: shards are spread over the backends starting at
// the plan's home, so with several backends the estimates are bit-equal
// only when the backends are replicas (same simulator seed over the same
// universe) — which is how disq-serve configures a sharded tier.
func (t *Tier) executeSharded(req Request, st *query.Statement, objs []*domain.Object,
	bObj, bPrc crowd.Cost, key string, shards int, cm *classMetrics, start time.Time) (*Result, error) {
	parts := t.partitioner.Partition(objs, shards)

	// Build (or fetch) the one shard-independent plan on its home
	// backend, then release the build session before scattering — on a
	// mutex-serialized backend, holding it here would deadlock the
	// shards that need to acquire it below.
	affinity := t.cache.builder(key)
	idx := t.router.Pick(t.backends, key, affinity)
	if idx < 0 || idx >= len(t.backends) {
		idx = 0
	}
	home := t.backends[idx]
	buildSess := home.acquire()
	plan, hit, err := t.cache.getOrBuild(key, idx, func() (*core.Plan, error) {
		home.load.startBuild()
		defer home.load.endBuild()
		return core.Preprocess(buildSess.platform, st.Query(), bObj, bPrc, t.opts)
	})
	buildSess.release()
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}
	if hit {
		cm.cacheHits.Add(1)
	} else {
		cm.cacheMisses.Add(1)
	}

	var acfg *adaptive.Config
	if req.Adaptive {
		acfg = t.adaptive
		if acfg == nil {
			d := adaptive.Defaults()
			acfg = &d
		}
	}
	var lcfg *query.LazyConfig
	if req.Lazy {
		lcfg = t.lazyConfig()
	}
	// One shared memo serves every shard: the replicas' deterministic
	// answer streams make a mean cached by one shard bit-identical to
	// what any other would have bought, so overlapping evaluation sets
	// across sessions stop being re-purchased per replica.
	var memo query.AnswerMemo
	if t.reuseOn(req) {
		memo = t.answers.memoFor(t.domain)
		cm.reuseSessions.Add(1)
	}
	planQs := 0
	if qs, qerr := plan.Questions(); qerr == nil {
		planQs = len(qs)
	}

	// Scatter: one goroutine per non-empty shard, round-robin over the
	// backends starting at the plan's home (shard 0 reuses the answers
	// the build memoized there). Plain goroutines, not the shared worker
	// pool: the shards are latency-bound (each blocks on crowd round
	// trips), so they must overlap even on a single-slot pool host.
	outs := make([]shardOutcome, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		shardObjs := make([]*domain.Object, len(part))
		for j, pi := range part {
			shardObjs[j] = objs[pi]
		}
		sb := t.backends[(idx+s)%len(t.backends)]
		wg.Add(1)
		go func(s int, sb *backend, shardObjs []*domain.Object) {
			defer wg.Done()
			outs[s], errs[s] = t.runShard(sb, plan, st, shardObjs, planQs, acfg, lcfg, memo)
		}(s, sb, shardObjs)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		cm.errors.Add(1)
		return nil, err
	}

	// Gather: plain statements merge back into evaluation order; ordered
	// statements take the rank-aware top-k gather, which reproduces the
	// unsharded engine's (key, evaluation-order) total sort — each shard
	// already returned its local top k, and the global top k is a subset
	// of their union.
	rank := make(map[int]int, len(objs))
	for i, o := range objs {
		rank[o.ID] = i
	}
	shardRows := make([][]query.ResultRow, len(outs))
	for s := range outs {
		shardRows[s] = outs[s].rows
	}
	var merged []query.ResultRow
	if st.Order != nil {
		merged = query.MergeTopK(rank, st.Order.Desc, st.Limit, shardRows...)
	} else {
		merged = query.MergeRows(rank, shardRows...)
	}

	out := &Result{
		Rows:           make([]Row, len(merged)),
		CacheHit:       hit,
		Backend:        home.name,
		PreprocessCost: plan.PreprocessCost,
		Adaptive:       req.Adaptive,
		Lazy:           req.Lazy,
		Shards:         shards,
	}
	var asked int64
	for s := range outs {
		out.OnlineSpent += outs[s].spent
		out.QuestionsSaved += outs[s].saved
		out.ObjectsPruned += outs[s].pruned
		out.QuestionsSkipped += outs[s].skipped
		out.AnswersReused += outs[s].reused
		out.SpendSavedMills += outs[s].savedMills
		asked += outs[s].asked
	}
	for i, r := range merged {
		out.Rows[i] = resultRow(st, r)
	}
	out.Latency = t.metrics.now().Sub(start)
	if req.Adaptive {
		cm.adaptiveSessions.Add(1)
		cm.questionsSaved.Add(out.QuestionsSaved)
	}
	if req.Lazy {
		cm.lazySessions.Add(1)
		cm.objectsPruned.Add(out.ObjectsPruned)
		cm.questionsSkipped.Add(out.QuestionsSkipped)
	}
	if memo != nil {
		out.Reuse = true
		cm.answersReused.Add(out.AnswersReused)
		cm.spendSavedMills.Add(out.SpendSavedMills)
	}
	cm.shardedSessions.Add(1)
	cm.observe(out.Latency, out.OnlineSpent, asked)
	return out, nil
}

// runShard evaluates one object partition on a private session of its
// backend, reporting the rows and what they cost.
func (t *Tier) runShard(sb *backend, plan *core.Plan, st *query.Statement,
	shardObjs []*domain.Object, planQs int, acfg *adaptive.Config, lcfg *query.LazyConfig,
	memo query.AnswerMemo) (shardOutcome, error) {
	sb.load.startSession()
	defer sb.load.endSession()
	sess := sb.acquire()
	defer sess.release()
	if planQs > 0 {
		n := int64(planQs * len(shardObjs))
		sb.load.addQuestions(n)
		defer sb.load.addQuestions(-n)
	}
	engine, err := query.NewEngine(sess.platform, plan, st)
	if err != nil {
		return shardOutcome{}, err
	}
	if acfg != nil {
		// Adaptive calibration and reallocation are scoped to the shard's
		// partition — the sharded adaptive path trades the tier-wide
		// savings pool for parallelism and is not bit-pinned.
		engine.SetAdaptive(acfg)
	}
	if lcfg != nil {
		// Lazy evaluation is per-object, so shard-local runs compose
		// exactly: top-k pruning only tightens within a shard, and the
		// ordered gather restores the global order from the local top-k's.
		engine.SetLazy(lcfg)
	}
	if memo != nil {
		engine.SetReuse(memo)
	}
	rows, err := engine.Execute(st, shardObjs)
	if err != nil {
		return shardOutcome{}, err
	}
	o := shardOutcome{rows: rows, spent: sess.ledger.Spent(), asked: questionsAsked(sess.ledger)}
	if acfg != nil {
		o.saved = engine.AdaptiveStats().Saved
	}
	if lcfg != nil {
		ls := engine.LazyStats()
		o.pruned = ls.ObjectsPruned
		o.skipped = ls.QuestionsSkipped
	}
	if memo != nil {
		rs := engine.ReuseStats()
		o.reused = rs.AnswersReused
		o.savedMills = rs.SpendSavedMills
	}
	sb.load.noteAnswered(o.asked)
	return o, nil
}
