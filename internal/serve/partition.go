package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/domain"
)

// Partition policy names.
const (
	PartitionHash  = "hash"
	PartitionRange = "range"
)

// PartitionPolicies lists the partition policies NewPartitioner accepts.
func PartitionPolicies() []string {
	return []string{PartitionHash, PartitionRange}
}

// Partitioner deterministically assigns each object of a query's
// evaluation set to one shard. Partition returns exactly shards slices of
// indices into objs: every input index appears in exactly one shard, and
// each shard's indices are ascending, so concatenating the shards in
// index-merge order reproduces the unsharded evaluation order. The
// assignment is a pure function of the object IDs — the same object lands
// on the same shard across queries, which is what lets a shard's backend
// accumulate memoized answers for "its" objects.
type Partitioner interface {
	Name() string
	Partition(objs []*domain.Object, shards int) [][]int
}

// NewPartitioner resolves a partition policy name ("" = hash).
func NewPartitioner(policy string) (Partitioner, error) {
	switch policy {
	case "", PartitionHash:
		return hashPartitioner{}, nil
	case PartitionRange:
		return rangePartitioner{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown partition policy %q (want one of %v)", policy, PartitionPolicies())
	}
}

// hashPartitioner shards by FNV-64a of the object ID modulo the shard
// count: stateless, balanced in expectation, and insensitive to the ID
// distribution (sequential IDs spread instead of clustering).
type hashPartitioner struct{}

func (hashPartitioner) Name() string { return PartitionHash }

func (hashPartitioner) Partition(objs []*domain.Object, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	out := make([][]int, shards)
	for i, o := range objs {
		s := hashShard(o.ID, shards)
		out[s] = append(out[s], i)
	}
	return out
}

func hashShard(id, shards int) int {
	if shards == 1 {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(id)))
	h.Write(buf[:])
	return int(h.Sum64() % uint64(shards))
}

// rangePartitioner shards by contiguous ID ranges: the evaluation set is
// ranked by object ID and split into shards equal-size runs. Contiguous
// ranges keep ID-local objects co-resident — the layout a range index or
// an ORDER BY merge (ROADMAP item 5) wants — at the price of imbalance
// when queries slice the ID space unevenly.
type rangePartitioner struct{}

func (rangePartitioner) Name() string { return PartitionRange }

func (rangePartitioner) Partition(objs []*domain.Object, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	byID := make([]int, len(objs))
	for i := range objs {
		byID[i] = i
	}
	sort.Slice(byID, func(a, b int) bool { return objs[byID[a]].ID < objs[byID[b]].ID })
	out := make([][]int, shards)
	for rank, idx := range byID {
		s := rank * shards / len(objs)
		out[s] = append(out[s], idx)
	}
	// Restore ascending input order inside each shard (the rank walk
	// ordered them by ID).
	for s := range out {
		sort.Ints(out[s])
	}
	return out
}
