package serve

import (
	"testing"
	"time"
)

func TestRunLoadClosedLoop(t *testing.T) {
	tier := newTestTier(t, 2, 4, Config{})
	rep, err := RunLoad(tier, LoadConfig{
		Statements:  []string{"SELECT Protein", "SELECT Calories"},
		Classes:     []string{"interactive", "batch"},
		Concurrency: 4,
		Duration:    400 * time.Millisecond,
		MaxObjects:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("closed-loop run completed zero queries")
	}
	if rep.Errors != 0 {
		t.Fatalf("load run hit %d errors", rep.Errors)
	}
	if rep.QPS <= 0 {
		t.Fatalf("qps = %v", rep.QPS)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("quantiles p50=%v p99=%v", rep.P50, rep.P99)
	}
	// Two statement shapes → two misses, the rest hits.
	if rep.CacheHits != rep.Queries-2 {
		t.Fatalf("cache hits = %d of %d queries", rep.CacheHits, rep.Queries)
	}
}

func TestRunLoadOpenLoop(t *testing.T) {
	tier := newTestTier(t, 1, 2, Config{})
	rep, err := RunLoad(tier, LoadConfig{
		Statements:  []string{"SELECT Protein"},
		Concurrency: 4,
		Rate:        200,
		Duration:    400 * time.Millisecond,
		MaxObjects:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("open-loop run completed zero queries")
	}
	if rep.Errors != 0 {
		t.Fatalf("load run hit %d errors", rep.Errors)
	}
}

// TestRunLoadLazyTopK drives a lazy mixed workload (one of the
// statements ordered) and checks the harness totals the lazy savings
// counters across sessions.
func TestRunLoadLazyTopK(t *testing.T) {
	tier := newTestTier(t, 1, 8, Config{})
	rep, err := RunLoad(tier, LoadConfig{
		Statements: []string{
			"SELECT Protein WHERE Dessert > 0.5",
			"SELECT Protein ORDER BY Protein DESC LIMIT 3",
		},
		Concurrency: 2,
		Duration:    400 * time.Millisecond,
		Lazy:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.QuestionsSkipped <= 0 {
		t.Fatalf("QuestionsSkipped = %d, want > 0 over a lazy run", rep.QuestionsSkipped)
	}
}

func TestRunLoadValidation(t *testing.T) {
	tier := newTestTier(t, 1, 1, Config{})
	if _, err := RunLoad(tier, LoadConfig{}); err == nil {
		t.Fatal("empty statement list must error")
	}
}

func TestMeasureCacheGain(t *testing.T) {
	tier := newTestTier(t, 2, 4, Config{})
	g, err := MeasureCacheGain(tier, GainConfig{
		Statement:  "SELECT Protein",
		Probes:     2,
		MaxObjects: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.ColdP50 <= 0 || g.WarmP50 <= 0 {
		t.Fatalf("gain sides: cold=%v warm=%v", g.ColdP50, g.WarmP50)
	}
	// Cold pays a full preprocess; warm is a cache hit over memoized
	// answers. Any healthy tier clears 1x by a wide margin.
	if g.Gain <= 1 {
		t.Fatalf("plan cache gain = %.2f, want > 1", g.Gain)
	}
}
