package serve

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// BucketConfig is one SLO class's token bucket. A session consumes one
// token; tokens refill continuously at Rate per second up to Burst.
// Sessions arriving to an empty bucket queue (FIFO by arrival) until a
// token accrues, bounded by MaxQueue waiters and MaxWait per waiter;
// beyond either bound the session is rejected with ErrRejected.
//
// The math: with tokens(t₀)=k and a session arriving at t, admission is
// immediate iff k + Rate·(t−t₀) ≥ 1; otherwise its queue position q
// admits it after (1 + q − k)/Rate seconds, so a class's steady-state
// throughput is exactly Rate sessions/sec with bursts of up to Burst
// absorbed without queueing.
type BucketConfig struct {
	// Rate is sustained sessions per second. Rate <= 0 disables the
	// bucket entirely (the class is unlimited).
	Rate float64
	// Burst is the bucket capacity (minimum 1 when Rate > 0).
	Burst int
	// MaxQueue bounds how many sessions may wait for a token; 0 sheds
	// immediately when the bucket is empty.
	MaxQueue int
	// MaxWait caps one session's queueing time (0 = no cap).
	MaxWait time.Duration
}

// bucket is the running state of one class's token bucket.
type bucket struct {
	cfg BucketConfig
	now func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
	queued int
}

func newBucket(cfg BucketConfig, now func() time.Time) *bucket {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	return &bucket{cfg: cfg, now: now, tokens: float64(cfg.Burst), last: now()}
}

// refillLocked advances the bucket to t.
func (b *bucket) refillLocked(t time.Time) {
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.cfg.Rate
		if max := float64(b.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = t
	}
}

// admit takes one token, waiting in queue when necessary. It returns
// ErrRejected (wrapped) when the queue bound or wait cap would be
// exceeded, and the context error if ctx ends first. queuedFn is invoked
// when the session had to queue, so the caller can count it.
func (b *bucket) admit(ctx context.Context, queuedFn func(wait time.Duration)) error {
	b.mu.Lock()
	t := b.now()
	b.refillLocked(t)
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return nil
	}
	if b.queued >= b.cfg.MaxQueue {
		b.mu.Unlock()
		return fmt.Errorf("%w: bucket empty and queue full (%d waiting)", ErrRejected, b.cfg.MaxQueue)
	}
	// Reserve the token this waiter will consume: going one token into
	// debt serializes the queue FIFO by arrival and makes each waiter's
	// delay a pure function of its queue position.
	b.queued++
	b.tokens--
	wait := time.Duration((-b.tokens) / b.cfg.Rate * float64(time.Second))
	if b.cfg.MaxWait > 0 && wait > b.cfg.MaxWait {
		b.queued--
		b.tokens++
		b.mu.Unlock()
		return fmt.Errorf("%w: token %s away exceeds max wait %s", ErrRejected, wait, b.cfg.MaxWait)
	}
	b.mu.Unlock()
	if queuedFn != nil {
		queuedFn(wait)
	}

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-timer.C:
		b.mu.Lock()
		b.queued--
		b.mu.Unlock()
		return nil
	case <-ctx.Done():
		b.mu.Lock()
		b.queued--
		b.tokens++ // return the reserved token
		b.mu.Unlock()
		return ctx.Err()
	}
}

// admission holds the per-class buckets. Classes without a configured
// bucket (or with Rate <= 0) are unlimited.
type admission struct {
	buckets map[string]*bucket
}

func newAdmission(cfgs map[string]BucketConfig, now func() time.Time) *admission {
	a := &admission{buckets: make(map[string]*bucket, len(cfgs))}
	for class, cfg := range cfgs {
		if cfg.Rate > 0 {
			a.buckets[class] = newBucket(cfg, now)
		}
	}
	return a
}

func (a *admission) admit(ctx context.Context, class string, cm *classMetrics) error {
	b, ok := a.buckets[class]
	if !ok {
		return nil
	}
	return b.admit(ctx, func(wait time.Duration) { cm.queued.Add(1) })
}
