package serve

import (
	"strings"
	"testing"
)

// TestRouterPickDegenerateSlices pins the guards every policy shares: an
// empty tier has no pick (-1, never a panic), and a single backend is
// always index 0.
func TestRouterPickDegenerateSlices(t *testing.T) {
	single := []*backend{{name: "only"}}
	for _, policy := range Policies() {
		r, err := NewRouter(policy)
		if err != nil {
			t.Fatal(err)
		}
		for _, affinity := range []int{-1, 0, 5} {
			if got := r.Pick(nil, "k", affinity); got != -1 {
				t.Fatalf("%s.Pick(empty, affinity=%d) = %d, want -1", policy, affinity, got)
			}
			if got := r.Pick(single, "k", affinity); got != 0 {
				t.Fatalf("%s.Pick(single, affinity=%d) = %d, want 0", policy, affinity, got)
			}
		}
	}
}

// TestRoundRobinSingleBackendSkipsCounter checks the one-element fast
// path does not churn the shared counter, so a later multi-backend pick
// sequence starts from a deterministic spot.
func TestRoundRobinSingleBackendSkipsCounter(t *testing.T) {
	r := &roundRobin{}
	single := []*backend{{name: "a"}}
	for i := 0; i < 5; i++ {
		if got := r.Pick(single, "k", -1); got != 0 {
			t.Fatalf("Pick(single) = %d, want 0", got)
		}
	}
	pair := []*backend{{name: "a"}, {name: "b"}}
	for i := 0; i < 4; i++ {
		if got := r.Pick(pair, "k", -1); got != i%2 {
			t.Fatalf("pick %d = %d, want %d (single-backend picks must not advance the counter)", i, got, i%2)
		}
	}
}

func TestNewRouterUnknownPolicy(t *testing.T) {
	if _, err := NewRouter("bogus"); err == nil {
		t.Fatal("unknown routing policy accepted")
	} else if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), PolicyPlanAffinity) {
		t.Fatalf("error %q should name the bad policy and the valid ones", err)
	}
	r, err := NewRouter("")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != PolicyPlanAffinity {
		t.Fatalf("default policy = %q, want %q", r.Name(), PolicyPlanAffinity)
	}
}
