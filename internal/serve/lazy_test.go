package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/query"
)

// TestServeLazySessionCounters pins the unsharded lazy serving path: a
// Request.Lazy session reports Lazy on the result, skips questions under
// the default confidence config, and lands in the per-class lazy
// counters.
func TestServeLazySessionCounters(t *testing.T) {
	tier := newReplicaTier(t, 1, 12, Config{})
	ctx := context.Background()

	res, err := tier.Execute(ctx, Request{
		Statement: "SELECT Protein WHERE Dessert > 0.5",
		Lazy:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lazy {
		t.Fatal("Result.Lazy = false for a lazy session")
	}
	if res.QuestionsSkipped <= 0 {
		t.Fatalf("QuestionsSkipped = %d, want > 0 under the default confidence config", res.QuestionsSkipped)
	}
	cs := tier.Stats().Classes[DefaultClass]
	if cs.LazySessions != 1 {
		t.Fatalf("LazySessions = %d, want 1", cs.LazySessions)
	}
	if cs.QuestionsSkipped != res.QuestionsSkipped {
		t.Fatalf("class QuestionsSkipped = %d, result reported %d", cs.QuestionsSkipped, res.QuestionsSkipped)
	}
}

// TestServeLazyAdaptiveConflict: a session cannot run both budget
// reallocation and lazy short-circuiting — the tier rejects the combined
// request before touching a backend.
func TestServeLazyAdaptiveConflict(t *testing.T) {
	tier := newReplicaTier(t, 1, 6, Config{})
	_, err := tier.Execute(context.Background(), Request{
		Statement: "SELECT Protein",
		Adaptive:  true,
		Lazy:      true,
	})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Adaptive+Lazy error = %v, want mutually-exclusive rejection", err)
	}
	if cs := tier.Stats().Classes[DefaultClass]; cs.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", cs.Errors)
	}
}

// TestServeOrderedRowsCarrySortKey: ordered statements surface the ORDER
// BY estimate on each row, in the requested direction; plain statements
// leave it zero.
func TestServeOrderedRowsCarrySortKey(t *testing.T) {
	tier := newReplicaTier(t, 1, 12, Config{})
	ctx := context.Background()

	res, err := tier.Execute(ctx, Request{Statement: "SELECT Calories ORDER BY Protein DESC LIMIT 4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].SortKey > res.Rows[i-1].SortKey {
			t.Fatalf("rows not descending by SortKey: %v", res.Rows)
		}
	}
	plain, err := tier.Execute(ctx, Request{Statement: "SELECT Calories"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plain.Rows {
		if r.SortKey != 0 {
			t.Fatalf("plain statement row carries SortKey %v", r.SortKey)
		}
	}
}

// TestShardedTopKMatchesUnsharded is the gather half of the ordered
// contract: for S∈{2,4} over S replica backends, a top-k session returns
// the same rows — IDs, values, sort keys, order — as the unsharded tier,
// and (eager path) the summed shard spend equals the unsharded bill.
// Each shard computes its local top k and MergeTopK restores the global
// order, so the pin holds for the eager engine, the pinned
// full-evaluation lazy mode, and the exact (Z=∞) short-circuit mode.
func TestShardedTopKMatchesUnsharded(t *testing.T) {
	const stmt = "SELECT Calories ORDER BY Protein DESC LIMIT 5"
	const nObj = 12
	ctx := context.Background()

	baseline := newReplicaTier(t, 1, nObj, Config{})
	want, err := baseline.Execute(ctx, Request{Statement: stmt})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 5 {
		t.Fatalf("unsharded top-k returned %d rows, want 5", len(want.Rows))
	}

	exact := &query.LazyConfig{ShortCircuit: true, Reorder: true, Z: math.Inf(1), TopKPrune: true}
	modes := []struct {
		name string
		cfg  Config
		req  Request
	}{
		{name: "eager", req: Request{Statement: stmt}},
		{name: "lazy-full", cfg: Config{Lazy: query.LazyFull()}, req: Request{Statement: stmt, Lazy: true}},
		{name: "lazy-exact", cfg: Config{Lazy: exact}, req: Request{Statement: stmt, Lazy: true}},
	}
	for _, mode := range modes {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/S=%d", mode.name, shards), func(t *testing.T) {
				cfg := mode.cfg
				cfg.Shards = shards
				cfg.Partition = PartitionHash
				tier := newReplicaTier(t, shards, nObj, cfg)
				got, err := tier.Execute(ctx, mode.req)
				if err != nil {
					t.Fatal(err)
				}
				if got.Shards != shards {
					t.Fatalf("Result.Shards = %d, want %d", got.Shards, shards)
				}
				if got.Lazy != mode.req.Lazy {
					t.Fatalf("Result.Lazy = %v, want %v", got.Lazy, mode.req.Lazy)
				}
				if !rowsEqual(want.Rows, got.Rows) {
					t.Fatalf("top-k rows diverged:\nunsharded: %+v\nsharded:   %+v", want.Rows, got.Rows)
				}
				for i := range got.Rows {
					if got.Rows[i].SortKey != want.Rows[i].SortKey {
						t.Fatalf("row %d SortKey %v, unsharded %v", i, got.Rows[i].SortKey, want.Rows[i].SortKey)
					}
				}
				if mode.name == "eager" && got.OnlineSpent != want.OnlineSpent {
					t.Fatalf("eager sharded spend %v, unsharded %v", got.OnlineSpent, want.OnlineSpent)
				}
			})
		}
	}
}

// TestShardedLazyTopKDefaultsMatchUnshardedLazy extends the gather pin
// to the default (finite-Z) lazy config: the sharded lazy session must
// return exactly the rows of the unsharded lazy session — per-object
// decisions depend only on that object's answer streams, shard-local
// top-k pruning is sound within each shard, and the ordered gather
// reassembles the global order.
func TestShardedLazyTopKDefaultsMatchUnshardedLazy(t *testing.T) {
	const stmt = "SELECT Calories ORDER BY Protein DESC LIMIT 5"
	const nObj = 12
	ctx := context.Background()

	baseline := newReplicaTier(t, 1, nObj, Config{})
	want, err := baseline.Execute(ctx, Request{Statement: stmt, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("S=%d", shards), func(t *testing.T) {
			tier := newReplicaTier(t, shards, nObj, Config{Shards: shards, Partition: PartitionHash})
			got, err := tier.Execute(ctx, Request{Statement: stmt, Lazy: true})
			if err != nil {
				t.Fatal(err)
			}
			if !rowsEqual(want.Rows, got.Rows) {
				t.Fatalf("lazy top-k rows diverged:\nunsharded: %+v\nsharded:   %+v", want.Rows, got.Rows)
			}
			if cs := tier.Stats().Classes[DefaultClass]; cs.LazySessions != 1 {
				t.Fatalf("LazySessions = %d, want 1", cs.LazySessions)
			}
		})
	}
}
