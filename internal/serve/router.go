package serve

import (
	"fmt"
	"sync/atomic"
)

// Router picks the backend a session runs on. affinity is the index of
// the backend that built (or is building) the session's cached plan, or
// -1 when no plan exists yet. Implementations must be safe for concurrent
// use.
type Router interface {
	Name() string
	Pick(backends []*backend, key string, affinity int) int
}

// Policy names.
const (
	PolicyRoundRobin   = "round-robin"
	PolicyLeastLoaded  = "least-loaded"
	PolicyPlanAffinity = "plan-affinity"
)

// Policies lists the routing policies NewRouter accepts.
func Policies() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyPlanAffinity}
}

// NewRouter resolves a policy name ("" = plan-affinity).
func NewRouter(policy string) (Router, error) {
	switch policy {
	case "", PolicyPlanAffinity:
		return &planAffinity{}, nil
	case PolicyRoundRobin:
		return &roundRobin{}, nil
	case PolicyLeastLoaded:
		return leastLoaded{}, nil
	default:
		return nil, fmt.Errorf("serve: unknown routing policy %q (want one of %v)", policy, Policies())
	}
}

// roundRobin cycles sessions over the backends regardless of load or
// cache locality.
type roundRobin struct {
	next atomic.Int64
}

func (r *roundRobin) Name() string { return PolicyRoundRobin }

func (r *roundRobin) Pick(backends []*backend, key string, affinity int) int {
	// Guard the degenerate slices: an empty tier has no pick (-1), and a
	// single backend needs no counter churn.
	if len(backends) == 0 {
		return -1
	}
	if len(backends) == 1 {
		return 0
	}
	return int((r.next.Add(1) - 1) % int64(len(backends)))
}

// leastLoaded sends the session to the backend with the fewest in-flight
// questions (outstanding value questions of active sessions, the best
// proxy for remaining crowd work), breaking ties by in-flight sessions,
// then index.
type leastLoaded struct{}

func (leastLoaded) Name() string { return PolicyLeastLoaded }

func (leastLoaded) Pick(backends []*backend, key string, affinity int) int {
	if len(backends) == 0 {
		return -1
	}
	if len(backends) == 1 {
		return 0
	}
	best := 0
	bestQ, bestS := backends[0].load.questions(), backends[0].load.sessions()
	for i := 1; i < len(backends); i++ {
		q, s := backends[i].load.questions(), backends[i].load.sessions()
		if q < bestQ || (q == bestQ && s < bestS) {
			best, bestQ, bestS = i, q, s
		}
	}
	return best
}

// planAffinity pins a session to the backend whose answer streams built
// its plan — value questions the plan's training and earlier sessions
// already asked are memoized there, so affinity turns repeated queries
// into cache reads. Sessions with no cached plan fall back to
// least-loaded (and the backend they land on becomes the plan's home).
type planAffinity struct {
	fallback leastLoaded
}

func (p *planAffinity) Name() string { return PolicyPlanAffinity }

func (p *planAffinity) Pick(backends []*backend, key string, affinity int) int {
	if len(backends) == 0 {
		return -1
	}
	if affinity >= 0 && affinity < len(backends) {
		return affinity
	}
	return p.fallback.Pick(backends, key, -1)
}

// backendLoad tracks one backend's in-flight work with atomics.
type backendLoad struct {
	inflightSessions  atomic.Int64
	inflightQuestions atomic.Int64
	totalSessions     atomic.Int64
	plansBuilt        atomic.Int64
	buildsInFlight    atomic.Int64
	questionsAnswered atomic.Int64
}

func (l *backendLoad) startSession() {
	l.inflightSessions.Add(1)
	l.totalSessions.Add(1)
}
func (l *backendLoad) endSession()          { l.inflightSessions.Add(-1) }
func (l *backendLoad) addQuestions(n int64) { l.inflightQuestions.Add(n) }
func (l *backendLoad) startBuild() {
	l.buildsInFlight.Add(1)
	l.plansBuilt.Add(1)
}
func (l *backendLoad) endBuild()        { l.buildsInFlight.Add(-1) }
func (l *backendLoad) questions() int64 { return l.inflightQuestions.Load() }
func (l *backendLoad) sessions() int64  { return l.inflightSessions.Load() }

// noteAnswered records online questions a completed session actually
// asked on this backend — the per-backend work volume the sharding
// benchmark divides by.
func (l *backendLoad) noteAnswered(n int64) { l.questionsAnswered.Add(n) }

// BackendStats is one backend's observability snapshot.
type BackendStats struct {
	Name              string `json:"name"`
	Sessions          int64  `json:"sessions"`
	InflightSessions  int64  `json:"inflight_sessions"`
	InflightQuestions int64  `json:"inflight_questions"`
	PlansBuilt        int64  `json:"plans_built"`
	// QuestionsAnswered totals the online questions completed sessions
	// asked this backend; under sharding each backend answers only for
	// its object partitions, so this falls ~1/S per backend.
	QuestionsAnswered int64 `json:"questions_answered"`
}

func (l *backendLoad) stats(name string) BackendStats {
	return BackendStats{
		Name:              name,
		Sessions:          l.totalSessions.Load(),
		InflightSessions:  l.inflightSessions.Load(),
		InflightQuestions: l.inflightQuestions.Load(),
		PlansBuilt:        l.plansBuilt.Load(),
		QuestionsAnswered: l.questionsAnswered.Load(),
	}
}
