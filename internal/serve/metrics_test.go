package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/crowd"
)

// TestQuantilesNearestRankCeil pins the nearest-rank quantile over small
// windows. The old floor-based index biased tail quantiles low: over 100
// samples p99 returned the 99th-largest sample (index 98) instead of the
// maximum (index 99).
func TestQuantilesNearestRankCeil(t *testing.T) {
	// Samples are inserted out of order; quantiles sort a snapshot.
	cases := []struct {
		name    string
		samples []int64
		q       []float64
		want    []int64
	}{
		{"n=1", []int64{7}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{7, 7, 7, 7, 7}},
		{"n=2", []int64{20, 10}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 20, 20, 20, 20}},
		{"n=3", []int64{30, 10, 20}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 20, 30, 30, 30}},
		{"n=4", []int64{40, 10, 30, 20}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 30, 40, 40, 40}},
		{"n=5", []int64{50, 20, 40, 10, 30}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 30, 50, 50, 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newLatencyRing(16)
			for _, s := range tc.samples {
				r.add(s)
			}
			got := r.quantiles(tc.q...)
			for i := range tc.q {
				if got[i] != tc.want[i] {
					t.Errorf("q=%.2f over %v: got %d, want %d", tc.q[i], tc.samples, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestQuantileP99Of100IsMax is the regression the fix exists for: with
// exactly 100 samples, p99 must pick index 99 (the maximum), not 98.
func TestQuantileP99Of100IsMax(t *testing.T) {
	r := newLatencyRing(128)
	for i := int64(1); i <= 100; i++ {
		r.add(i)
	}
	got := r.quantiles(0.99)
	if got[0] != 100 {
		t.Fatalf("p99 of 1..100 = %d, want 100 (the floor bias picked 99)", got[0])
	}
}

// TestQuantilesEmptyWindow keeps the zero-value behavior.
func TestQuantilesEmptyWindow(t *testing.T) {
	r := newLatencyRing(4)
	got := r.quantiles(0.5, 0.99)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty window quantiles = %v, want zeros", got)
	}
}

// TestFairnessIndex pins Jain's index over per-class served QPS: 1.0
// when every class is served equally, 1/n when a single class hogs the
// tier, and 1.0 (not NaN) with nothing served.
func TestFairnessIndex(t *testing.T) {
	cases := []struct {
		name     string
		sessions map[string]int64
		want     float64
	}{
		{"no-traffic", nil, 1.0},
		{"one-class", map[string]int64{"interactive": 40}, 1.0},
		{"all-equal", map[string]int64{"interactive": 25, "batch": 25, "best-effort": 25}, 1.0},
		// Single hog among n=3 observed classes: (Σx)²/(n·Σx²) = 1/3.
		{"single-hog", map[string]int64{"interactive": 60, "batch": 0, "best-effort": 0}, 1.0 / 3},
		// Worked example: x = (4, 1, 1) → 36 / (3·18) = 2/3.
		{"skewed", map[string]int64{"interactive": 4, "batch": 1, "best-effort": 1}, 2.0 / 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newMetrics(time.Now)
			for class, n := range tc.sessions {
				cm := m.class(class)
				for i := int64(0); i < n; i++ {
					cm.observe(time.Millisecond, crowd.Cents(1), 1)
				}
			}
			got := m.snapshot().FairnessIndex
			if diff := got - tc.want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("fairness index = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestFairnessIndexSurfacesInTierStats drives a real tier with a hogging
// class mix and checks the index lands in Stats (zero-session classes
// must be observed to count: admission tracks every class that shows up,
// even if only to be rejected — here we just touch them with sessions).
func TestFairnessIndexSurfacesInTierStats(t *testing.T) {
	tier := newTestTier(t, 1, 4, Config{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := tier.Execute(ctx, Request{Statement: "SELECT Protein", Class: "interactive"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tier.Execute(ctx, Request{Statement: "SELECT Protein", Class: "batch"}); err != nil {
		t.Fatal(err)
	}
	// x = (4, 1) → 25 / (2·17) ≈ 0.735.
	got := tier.Stats().FairnessIndex
	want := 25.0 / 34.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("tier fairness index = %v, want %v", got, want)
	}
}

// TestAdaptiveCountersSurfaceInSnapshot checks the per-class adaptive
// counters round-trip through snapshot().
func TestAdaptiveCountersSurfaceInSnapshot(t *testing.T) {
	m := newMetrics(time.Now)
	cm := m.class("interactive")
	cm.observe(time.Millisecond, crowd.Cents(1), 10)
	cm.adaptiveSessions.Add(1)
	cm.questionsSaved.Add(4)
	cs := m.snapshot().Classes["interactive"]
	if cs.AdaptiveSessions != 1 || cs.QuestionsSaved != 4 {
		t.Fatalf("adaptive counters = %d/%d, want 1/4", cs.AdaptiveSessions, cs.QuestionsSaved)
	}
}
