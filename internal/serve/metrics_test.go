package serve

import (
	"testing"
	"time"

	"repro/internal/crowd"
)

// TestQuantilesNearestRankCeil pins the nearest-rank quantile over small
// windows. The old floor-based index biased tail quantiles low: over 100
// samples p99 returned the 99th-largest sample (index 98) instead of the
// maximum (index 99).
func TestQuantilesNearestRankCeil(t *testing.T) {
	// Samples are inserted out of order; quantiles sort a snapshot.
	cases := []struct {
		name    string
		samples []int64
		q       []float64
		want    []int64
	}{
		{"n=1", []int64{7}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{7, 7, 7, 7, 7}},
		{"n=2", []int64{20, 10}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 20, 20, 20, 20}},
		{"n=3", []int64{30, 10, 20}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 20, 30, 30, 30}},
		{"n=4", []int64{40, 10, 30, 20}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 30, 40, 40, 40}},
		{"n=5", []int64{50, 20, 40, 10, 30}, []float64{0, 0.5, 0.9, 0.99, 1}, []int64{10, 30, 50, 50, 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newLatencyRing(16)
			for _, s := range tc.samples {
				r.add(s)
			}
			got := r.quantiles(tc.q...)
			for i := range tc.q {
				if got[i] != tc.want[i] {
					t.Errorf("q=%.2f over %v: got %d, want %d", tc.q[i], tc.samples, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestQuantileP99Of100IsMax is the regression the fix exists for: with
// exactly 100 samples, p99 must pick index 99 (the maximum), not 98.
func TestQuantileP99Of100IsMax(t *testing.T) {
	r := newLatencyRing(128)
	for i := int64(1); i <= 100; i++ {
		r.add(i)
	}
	got := r.quantiles(0.99)
	if got[0] != 100 {
		t.Fatalf("p99 of 1..100 = %d, want 100 (the floor bias picked 99)", got[0])
	}
}

// TestQuantilesEmptyWindow keeps the zero-value behavior.
func TestQuantilesEmptyWindow(t *testing.T) {
	r := newLatencyRing(4)
	got := r.quantiles(0.5, 0.99)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty window quantiles = %v, want zeros", got)
	}
}

// TestAdaptiveCountersSurfaceInSnapshot checks the per-class adaptive
// counters round-trip through snapshot().
func TestAdaptiveCountersSurfaceInSnapshot(t *testing.T) {
	m := newMetrics(time.Now)
	cm := m.class("interactive")
	cm.observe(time.Millisecond, crowd.Cents(1), 10)
	cm.adaptiveSessions.Add(1)
	cm.questionsSaved.Add(4)
	cs := m.snapshot().Classes["interactive"]
	if cs.AdaptiveSessions != 1 || cs.QuestionsSaved != 4 {
		t.Fatalf("adaptive counters = %d/%d, want 1/4", cs.AdaptiveSessions, cs.QuestionsSaved)
	}
}
