package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// planCache is the LRU-bounded, single-flight plan cache. The identity of
// an entry is the serialized plan key (domain | sorted targets | B_obj |
// B_prc). Lookups of an entry another session is still building block on
// that build instead of preprocessing again — N concurrent identical
// queries pay for ONE core.Preprocess.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   *list.List // front = most recently used; ready entries only

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64 // lookups coalesced onto an in-flight build
	evictions atomic.Int64
}

// cacheEntry is one plan, possibly still being built. ready is closed
// when plan/err are final; elem links the entry into the LRU order once
// it is ready (failed builds never enter the LRU — they are deleted so
// the next lookup retries).
type cacheEntry struct {
	key     string
	backend int // index of the backend whose streams built the plan
	ready   chan struct{}
	plan    *core.Plan
	err     error
	elem    *list.Element
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		order:   list.New(),
	}
}

// builder reports which backend owns the key's plan (built or building),
// or -1 when the key is absent — the plan-affinity routing input.
func (c *planCache) builder(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.backend
	}
	return -1
}

// peek returns the ready plan for key without counting a hit or bumping
// recency.
func (c *planCache) peek(key string) (*core.Plan, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
		return e.plan, e.err == nil
	default:
		return nil, false
	}
}

// getOrBuild returns the cached plan for key, building it with build on a
// miss. hit reports whether the caller avoided running build itself —
// both a ready entry and joining another session's in-flight build count,
// since either way this session paid no preprocessing.
func (c *planCache) getOrBuild(key string, backend int, build func() (*core.Plan, error)) (plan *core.Plan, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			// Ready: bump recency and return.
			c.hits.Add(1)
			c.order.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.plan, true, e.err
		default:
			// In flight: wait for the builder.
			c.waits.Add(1)
			c.mu.Unlock()
			<-e.ready
			return e.plan, true, e.err
		}
	}
	e := &cacheEntry{key: key, backend: backend, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses.Add(1)
	c.mu.Unlock()

	e.plan, e.err = build()

	c.mu.Lock()
	if e.err != nil {
		// Failed builds are not cached: drop the entry so a later retry
		// preprocesses afresh. Waiters already joined still see the error.
		delete(c.entries, key)
	} else {
		e.elem = c.order.PushFront(e)
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			victim := oldest.Value.(*cacheEntry)
			c.order.Remove(oldest)
			delete(c.entries, victim.key)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.plan, false, e.err
}

// CacheStats is the plan cache's observability snapshot.
type CacheStats struct {
	Size          int   `json:"size"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	InflightWaits int64 `json:"inflight_waits"`
	Evictions     int64 `json:"evictions"`
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	size := c.order.Len()
	c.mu.Unlock()
	return CacheStats{
		Size:          size,
		Capacity:      c.cap,
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		InflightWaits: c.waits.Load(),
		Evictions:     c.evictions.Load(),
	}
}
