// Package serve is the multi-tenant query-serving tier: it sits between
// parsed query.Statements and one or more crowd.Platform backends and
// turns the paper's one-shot preprocess-then-evaluate pipeline into a
// long-lived service that amortizes crowd work across queries.
//
// The three mechanisms, in request order:
//
//   - Admission control: every session first passes a per-SLO-class
//     (interactive/batch) token bucket. Over-limit sessions queue up to a
//     bound and are rejected beyond it, so a burst of batch traffic cannot
//     starve interactive queries of crowd capacity.
//   - Plan cache: preprocessing output is cached under
//     (domain, sorted target-attribute set, B_obj, B_prc) with
//     single-flight semantics — N concurrent identical queries trigger ONE
//     core.Preprocess and all share the compiled plan. Repeated queries
//     skip the entire offline phase (tens of milliseconds and thousands of
//     paid questions per plan).
//   - Routing: sessions are multiplexed over the backends by a pluggable
//     policy (round-robin, least-loaded by in-flight questions, or
//     plan-affinity, which sticks a cached plan to the backend whose
//     answer streams built it so memoized answers are reused).
//   - Sharding (optional): with ≥ 2 shards configured, each query's
//     object set is partitioned deterministically (hash or range over
//     object IDs) and scattered over per-shard COW sessions evaluated in
//     parallel, the per-shard rows gathered back into evaluation order.
//     One plan build serves all shards (the plan is shard-independent),
//     and shards partition objects, never answers — per-object estimates
//     are bit-equal to the unsharded run.
//
// Each session runs on a private fork of its backend when the platform
// supports copy-on-write snapshots (crowd.SimPlatform does): the fork has
// its own ledger — every tenant pays its own crowd bill — while sharing
// the backend's memoized answer streams, so repeated evaluation of the
// same objects is served from memory. Platforms without forking are
// serialized per backend with the same accounting.
//
// The single-query degenerate configuration (one backend, cold cache,
// unlimited buckets) is determinism-pinned: it produces bit-equal plans,
// estimates and spend to driving core.Preprocess + query.Engine by hand.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domain"
	"repro/internal/query"
)

// Backend names one crowd platform the tier multiplexes sessions over.
type Backend struct {
	// Name identifies the backend in routing decisions and stats.
	Name string
	// Platform answers the crowd questions. When it supports
	// copy-on-write snapshots (crowd.SimPlatform), each session runs on a
	// private fork; otherwise sessions serialize on the backend.
	Platform crowd.Platform
}

// Config assembles a Tier.
type Config struct {
	// Domain names the attribute universe served; it is part of every
	// plan-cache key.
	Domain string
	// Backends are the crowd platforms to multiplex over (at least one).
	Backends []Backend
	// Objects is the database the tier evaluates statements against.
	// Register them before the first query; the set is fixed for the
	// tier's lifetime.
	Objects []*domain.Object
	// Policy picks the routing policy by name: "round-robin",
	// "least-loaded" or "plan-affinity" (the default).
	Policy string
	// CacheSize bounds the plan cache (LRU-evicted beyond it; default 64).
	CacheSize int
	// DefaultBObj/DefaultBPrc apply when a request leaves its budgets
	// zero (defaults: 4 cents / 10 dollars).
	DefaultBObj crowd.Cost
	DefaultBPrc crowd.Cost
	// Shards splits every query's evaluation set into this many object
	// partitions evaluated in parallel, one COW session per shard
	// (0 or 1 = the unsharded path, which stays bit-equal to the
	// pre-sharding tier). Requests can override per session.
	Shards int
	// Partition picks the shard-assignment policy by name: "hash" (the
	// default) or "range".
	Partition string
	// Admission configures one token bucket per SLO class. Classes
	// without an entry are unlimited.
	Admission map[string]BucketConfig
	// Adaptive tunes the adaptive online evaluator for sessions that
	// request it (Request.Adaptive); nil applies adaptive.Defaults().
	// Fixed-budget sessions are untouched either way.
	Adaptive *adaptive.Config
	// Lazy tunes the lazy predicate-ordered evaluator for sessions that
	// request it (Request.Lazy); nil applies query.LazyDefaults().
	// Eager sessions are untouched either way.
	Lazy *query.LazyConfig
	// AnswerCache bounds the shared answer-reuse cache (entries = cached
	// fully-budgeted answer means). 0 disables the cache — sessions
	// requesting ReuseAnswers then run exactly like today's tier.
	AnswerCache int
	// AnswerTTL expires cached answer means this long after their fill
	// (0 = never). Only meaningful with AnswerCache > 0.
	AnswerTTL time.Duration
	// Options tunes preprocessing (zero value = paper configuration).
	Options core.Options

	// now overrides the clock in tests.
	now func() time.Time
}

// Request is one query session.
type Request struct {
	// Statement is the SELECT/WHERE text to evaluate.
	Statement string
	// Class is the SLO class ("interactive" when empty).
	Class string
	// ObjectIDs restricts evaluation to these registered objects
	// (nil = every registered object).
	ObjectIDs []int
	// MaxObjects truncates evaluation to the first n registered objects
	// (0 = no limit). Ignored when ObjectIDs is set.
	MaxObjects int
	// BObj/BPrc override the tier's default budgets when nonzero.
	BObj crowd.Cost
	BPrc crowd.Cost
	// Adaptive opts the session into the adaptive online evaluator:
	// sequential stopping, reliability weighting and budget reallocation
	// (internal/adaptive), tuned by the tier's Config.Adaptive. The
	// fixed-budget path and its determinism pins are unaffected.
	Adaptive bool
	// Shards overrides the tier's configured shard count for this
	// session (0 = tier default; 1 forces the unsharded path). The count
	// is clamped to the evaluation set's size.
	Shards int
	// Lazy opts the session into the lazy predicate-ordered evaluator:
	// short-circuit filters, confidence-based early decisions and top-k
	// pruning (query.LazyConfig), tuned by the tier's Config.Lazy.
	// Mutually exclusive with Adaptive.
	Lazy bool
	// ReuseAnswers opts the session into the tier's shared answer cache:
	// fully-budgeted answer means it pays for are published for other
	// sessions, and cached means are served instead of re-asking the
	// crowd — rows stay bit-equal at lower OnlineSpent. Ignored when the
	// tier has no cache (Config.AnswerCache 0) and by adaptive sessions
	// (their variable answer counts have no full-budget means to share).
	ReuseAnswers bool
}

// Row is one object that passed the statement's WHERE filter.
type Row struct {
	ObjectID int                `json:"object_id"`
	Values   map[string]float64 `json:"values"`
	// SortKey is the ORDER BY attribute's estimate when the statement has
	// an ordering clause (absent otherwise).
	SortKey float64 `json:"sort_key,omitempty"`
}

// Result is one completed session.
type Result struct {
	Rows []Row `json:"rows"`
	// CacheHit reports whether the plan came from the cache (including
	// joining another session's in-flight build).
	CacheHit bool `json:"cache_hit"`
	// Backend is the name of the backend the session ran on.
	Backend string `json:"backend"`
	// PreprocessCost is what building the plan cost the crowd (charged
	// once per cache miss, reported on every session using the plan).
	PreprocessCost crowd.Cost `json:"preprocess_cost_mills"`
	// OnlineSpent is what this session's online evaluation cost.
	OnlineSpent crowd.Cost `json:"online_spent_mills"`
	// Adaptive reports whether the session ran the adaptive evaluator.
	Adaptive bool `json:"adaptive,omitempty"`
	// QuestionsSaved is how many of the plan's per-object questions the
	// adaptive evaluator skipped (0 on the fixed path).
	QuestionsSaved int64 `json:"questions_saved,omitempty"`
	// Shards is how many object partitions the session's evaluation was
	// scattered over (1 = the unsharded path).
	Shards int `json:"shards,omitempty"`
	// Lazy reports whether the session ran the lazy evaluator;
	// ObjectsPruned and QuestionsSkipped are its savings counters
	// (top-k-pruned candidates and plan questions never paid for).
	Lazy             bool  `json:"lazy,omitempty"`
	ObjectsPruned    int64 `json:"objects_pruned,omitempty"`
	QuestionsSkipped int64 `json:"questions_skipped,omitempty"`
	// Reuse reports whether the session consulted the shared answer
	// cache; AnswersReused is how many individual crowd answers it was
	// served from cache and SpendSavedMills their price — the amount a
	// cache-cold run of the same session would have added to OnlineSpent.
	Reuse           bool  `json:"reuse,omitempty"`
	AnswersReused   int64 `json:"answers_reused,omitempty"`
	SpendSavedMills int64 `json:"spend_saved_mills,omitempty"`
	// Latency is the end-to-end session wall time (admission included).
	Latency time.Duration `json:"latency_ns"`
}

// DefaultClass is the SLO class assumed when a request names none.
const DefaultClass = "interactive"

// ErrRejected is returned (wrapped) when admission control sheds a
// session instead of queueing it.
var ErrRejected = errors.New("serve: admission rejected")

// snapshotter is the copy-on-write capability sessions prefer.
type snapshotter interface {
	Snapshot() *crowd.SimSnapshot
}

// backend is the tier's view of one configured Backend.
type backend struct {
	name string
	p    crowd.Platform
	snap *crowd.SimSnapshot // non-nil when the platform forks

	// mu serializes sessions on non-forkable platforms (SetLedger is
	// platform-wide, so concurrent sessions would corrupt accounting).
	mu sync.Mutex

	load backendLoad
}

// session is one query's private view of a backend.
type session struct {
	platform crowd.Platform
	ledger   *crowd.Ledger
	release  func()
}

// acquire opens a session: a fork with its own fresh ledger when the
// platform snapshots (or forks through a wrapper stack via
// crowd.Forker), the backend itself (ledger swapped in, sessions
// serialized) otherwise.
func (b *backend) acquire() *session {
	if b.snap != nil {
		f := b.snap.Fork()
		return &session{platform: f, ledger: f.Ledger(), release: func() {}}
	}
	if fk, ok := b.p.(crowd.Forker); ok {
		if f := fk.ForkPlatform(); f != nil {
			return &session{platform: f, ledger: f.Ledger(), release: func() {}}
		}
	}
	b.mu.Lock()
	ledger := crowd.NewLedger(0)
	prev := b.p.SetLedger(ledger)
	return &session{
		platform: b.p,
		ledger:   ledger,
		release: func() {
			b.p.SetLedger(prev)
			b.mu.Unlock()
		},
	}
}

// Tier is the serving layer. Safe for concurrent use.
type Tier struct {
	domain      string
	backends    []*backend
	router      Router
	cache       *planCache
	adm         *admission
	metrics     *metrics
	opts        core.Options
	adaptive    *adaptive.Config
	lazy        *query.LazyConfig
	shards      int
	partitioner Partitioner
	answers     *answerCache // nil when Config.AnswerCache is 0

	defBObj, defBPrc crowd.Cost

	objMu   sync.RWMutex
	objects []*domain.Object
	byID    map[int]*domain.Object
}

// New builds a Tier from the config.
func New(cfg Config) (*Tier, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("serve: no backends")
	}
	router, err := NewRouter(cfg.Policy)
	if err != nil {
		return nil, err
	}
	part, err := NewPartitioner(cfg.Partition)
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("serve: negative shard count %d", cfg.Shards)
	}
	if cfg.AnswerCache < 0 {
		return nil, fmt.Errorf("serve: negative answer cache size %d", cfg.AnswerCache)
	}
	if cfg.AnswerTTL < 0 {
		return nil, fmt.Errorf("serve: negative answer TTL %v", cfg.AnswerTTL)
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.DefaultBObj <= 0 {
		cfg.DefaultBObj = crowd.Cents(4)
	}
	if cfg.DefaultBPrc <= 0 {
		cfg.DefaultBPrc = crowd.Dollars(10)
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	t := &Tier{
		domain:      cfg.Domain,
		router:      router,
		cache:       newPlanCache(cfg.CacheSize),
		adm:         newAdmission(cfg.Admission, now),
		metrics:     newMetrics(now),
		opts:        cfg.Options,
		adaptive:    cfg.Adaptive,
		lazy:        cfg.Lazy,
		shards:      cfg.Shards,
		partitioner: part,
		defBObj:     cfg.DefaultBObj,
		defBPrc:     cfg.DefaultBPrc,
		byID:        make(map[int]*domain.Object, len(cfg.Objects)),
	}
	if cfg.AnswerCache > 0 {
		t.answers = newAnswerCache(cfg.AnswerCache, cfg.AnswerTTL, now)
	}
	for i, b := range cfg.Backends {
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("backend-%d", i)
		}
		if b.Platform == nil {
			return nil, fmt.Errorf("serve: backend %q has no platform", name)
		}
		bk := &backend{name: name, p: b.Platform}
		// Snapshot AFTER all objects exist: forks pin the universe's
		// object-id watermark at snapshot time.
		if s, ok := b.Platform.(snapshotter); ok {
			bk.snap = s.Snapshot()
		}
		t.backends = append(t.backends, bk)
	}
	t.RegisterObjects(cfg.Objects)
	return t, nil
}

// RegisterObjects adds objects to the evaluation database.
func (t *Tier) RegisterObjects(objs []*domain.Object) {
	t.objMu.Lock()
	defer t.objMu.Unlock()
	for _, o := range objs {
		if o == nil {
			continue
		}
		if _, dup := t.byID[o.ID]; dup {
			continue
		}
		t.byID[o.ID] = o
		t.objects = append(t.objects, o)
	}
}

// resolveObjects materializes the request's object list in registration
// order.
func (t *Tier) resolveObjects(req Request) ([]*domain.Object, error) {
	t.objMu.RLock()
	defer t.objMu.RUnlock()
	if len(req.ObjectIDs) > 0 {
		out := make([]*domain.Object, 0, len(req.ObjectIDs))
		for _, id := range req.ObjectIDs {
			o, ok := t.byID[id]
			if !ok {
				return nil, fmt.Errorf("serve: unknown object %d", id)
			}
			out = append(out, o)
		}
		return out, nil
	}
	objs := t.objects
	if req.MaxObjects > 0 && req.MaxObjects < len(objs) {
		objs = objs[:req.MaxObjects]
	}
	return append([]*domain.Object(nil), objs...), nil
}

// planKey canonicalizes the cache identity of a statement at given
// budgets: the domain, the sorted deduplicated target-attribute set and
// both budgets. Two statements selecting/filtering the same attributes
// share a plan regardless of SELECT order or WHERE constants.
func (t *Tier) planKey(st *query.Statement, bObj, bPrc crowd.Cost) string {
	attrs := st.Attributes() // already deduplicated and sorted
	return fmt.Sprintf("%s|%s|%d|%d", t.domain, joinAttrs(attrs), bObj, bPrc)
}

func joinAttrs(attrs []string) string {
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	out := ""
	for i, a := range sorted {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// Execute runs one query session end to end: admission, parse, routing,
// plan lookup/build, online evaluation. It implements Executor.
func (t *Tier) Execute(ctx context.Context, req Request) (*Result, error) {
	start := t.metrics.now()
	class := req.Class
	if class == "" {
		class = DefaultClass
	}
	cm := t.metrics.class(class)

	if err := t.adm.admit(ctx, class, cm); err != nil {
		cm.rejected.Add(1)
		return nil, err
	}

	st, err := query.Parse(req.Statement)
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}
	if req.Adaptive && req.Lazy {
		cm.errors.Add(1)
		return nil, errors.New("serve: adaptive and lazy modes are mutually exclusive")
	}
	objs, err := t.resolveObjects(req)
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}
	bObj, bPrc := req.BObj, req.BPrc
	if bObj <= 0 {
		bObj = t.defBObj
	}
	if bPrc <= 0 {
		bPrc = t.defBPrc
	}
	key := t.planKey(st, bObj, bPrc)

	// Scatter-gather dispatch: with S ≥ 2 effective shards the session
	// forks one COW sub-session per object partition and evaluates them
	// in parallel. S ≤ 1 continues on the unsharded path below, which is
	// pinned bit-equal to the pre-sharding tier.
	if shards := t.effectiveShards(req, len(objs)); shards > 1 {
		return t.executeSharded(req, st, objs, bObj, bPrc, key, shards, cm, start)
	}

	// Route: a plan already (being) built sticks to its backend under
	// plan-affinity; otherwise the policy picks.
	affinity := t.cache.builder(key)
	idx := t.router.Pick(t.backends, key, affinity)
	if idx < 0 || idx >= len(t.backends) {
		idx = 0
	}
	b := t.backends[idx]
	b.load.startSession()
	defer b.load.endSession()

	sess := b.acquire()
	defer sess.release()

	plan, hit, err := t.cache.getOrBuild(key, idx, func() (*core.Plan, error) {
		b.load.startBuild()
		defer b.load.endBuild()
		return core.Preprocess(sess.platform, st.Query(), bObj, bPrc, t.opts)
	})
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}
	if hit {
		cm.cacheHits.Add(1)
	} else {
		cm.cacheMisses.Add(1)
	}

	// Weigh the session's remaining work for least-loaded routing: the
	// plan names every value question an object costs.
	if qs, qerr := plan.Questions(); qerr == nil {
		n := int64(len(qs) * len(objs))
		b.load.addQuestions(n)
		defer b.load.addQuestions(-n)
	}

	engine, err := query.NewEngine(sess.platform, plan, st)
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}
	if req.Adaptive {
		acfg := t.adaptive
		if acfg == nil {
			d := adaptive.Defaults()
			acfg = &d
		}
		engine.SetAdaptive(acfg)
		cm.adaptiveSessions.Add(1)
	}
	if req.Lazy {
		engine.SetLazy(t.lazyConfig())
		cm.lazySessions.Add(1)
	}
	reuse := t.reuseOn(req)
	if reuse {
		engine.SetReuse(t.answers.memoFor(t.domain))
		cm.reuseSessions.Add(1)
	}
	rows, err := engine.Execute(st, objs)
	if err != nil {
		cm.errors.Add(1)
		return nil, err
	}

	out := &Result{
		Rows:           make([]Row, len(rows)),
		CacheHit:       hit,
		Backend:        b.name,
		PreprocessCost: plan.PreprocessCost,
		OnlineSpent:    sess.ledger.Spent(),
		Adaptive:       req.Adaptive,
		Shards:         1,
		Latency:        t.metrics.now().Sub(start),
	}
	if req.Adaptive {
		saved := engine.AdaptiveStats().Saved
		out.QuestionsSaved = saved
		cm.questionsSaved.Add(saved)
	}
	if req.Lazy {
		ls := engine.LazyStats()
		out.Lazy = true
		out.ObjectsPruned = ls.ObjectsPruned
		out.QuestionsSkipped = ls.QuestionsSkipped
		cm.objectsPruned.Add(ls.ObjectsPruned)
		cm.questionsSkipped.Add(ls.QuestionsSkipped)
	}
	if reuse {
		rs := engine.ReuseStats()
		out.Reuse = true
		out.AnswersReused = rs.AnswersReused
		out.SpendSavedMills = rs.SpendSavedMills
		cm.answersReused.Add(rs.AnswersReused)
		cm.spendSavedMills.Add(rs.SpendSavedMills)
	}
	for i, r := range rows {
		out.Rows[i] = resultRow(st, r)
	}
	asked := questionsAsked(sess.ledger)
	b.load.noteAnswered(asked)
	cm.observe(out.Latency, out.OnlineSpent, asked)
	return out, nil
}

// reuseOn reports whether a session runs against the shared answer
// cache: it must opt in, the tier must have one, and adaptive sessions
// are excluded (their variable answer counts never produce the
// full-budget means the cache keys on).
func (t *Tier) reuseOn(req Request) bool {
	return req.ReuseAnswers && t.answers != nil && !req.Adaptive
}

// lazyConfig resolves the tier's lazy evaluator tuning.
func (t *Tier) lazyConfig() *query.LazyConfig {
	if t.lazy != nil {
		return t.lazy
	}
	return query.LazyDefaults()
}

// resultRow converts an engine row to the wire shape, carrying the sort
// key only for ordered statements.
func resultRow(st *query.Statement, r query.ResultRow) Row {
	row := Row{ObjectID: r.Object.ID, Values: r.Values}
	if st.Order != nil {
		row.SortKey = r.Key
	}
	return row
}

// effectiveShards resolves the session's shard count: the request's
// override, else the tier's default, clamped to the evaluation set (an
// empty shard would fork a session for nothing).
func (t *Tier) effectiveShards(req Request, nObjs int) int {
	s := req.Shards
	if s == 0 {
		s = t.shards
	}
	if s > nObjs {
		s = nObjs
	}
	if s < 1 {
		s = 1
	}
	return s
}

// questionsAsked totals the ledger's per-kind question counts.
func questionsAsked(l *crowd.Ledger) int64 {
	var n int64
	for _, k := range []crowd.QuestionKind{
		crowd.BinaryValue, crowd.NumericValue, crowd.Dismantling,
		crowd.Verification, crowd.ExampleQuestion,
	} {
		n += int64(l.Asked(k))
	}
	return n
}

// CachedPlan peeks at the plan the cache holds for a statement at the
// given budgets (tier defaults applied when zero) without counting a
// lookup — introspection for tests and tooling.
func (t *Tier) CachedPlan(statement string, bObj, bPrc crowd.Cost) (*core.Plan, bool) {
	st, err := query.Parse(statement)
	if err != nil {
		return nil, false
	}
	if bObj <= 0 {
		bObj = t.defBObj
	}
	if bPrc <= 0 {
		bPrc = t.defBPrc
	}
	return t.cache.peek(t.planKey(st, bObj, bPrc))
}

// Stats snapshots the tier's observability counters.
func (t *Tier) Stats() Stats {
	s := t.metrics.snapshot()
	s.Policy = t.router.Name()
	s.Partition = t.partitioner.Name()
	if s.Shards = t.shards; s.Shards < 1 {
		s.Shards = 1
	}
	s.Cache = t.cache.stats()
	if t.answers != nil {
		s.AnswerCache = t.answers.stats()
	}
	s.Backends = make([]BackendStats, len(t.backends))
	for i, b := range t.backends {
		s.Backends[i] = b.load.stats(b.name)
	}
	return s
}
