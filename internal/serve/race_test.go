package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessionsHammer drives 16 concurrent sessions — mixed
// statements, classes and budgets — over two backends. Under -race this
// is the safety pin for the plan cache (single-flight + LRU), the
// routers' load counters, the admission buckets and the per-class
// metrics; functionally it asserts every session of one statement shape
// returns identical rows (the memoized answer streams make concurrency
// invisible in the results).
func TestConcurrentSessionsHammer(t *testing.T) {
	tier := newTestTier(t, 2, 6, Config{
		Policy:    PolicyPlanAffinity,
		CacheSize: 4,
		Admission: map[string]BucketConfig{
			"batch": {Rate: 1000, Burst: 64, MaxQueue: 64},
		},
	})
	statements := []string{
		"SELECT Protein",
		"SELECT Calories",
		"SELECT Protein, Calories WHERE Dessert > 0.5",
	}
	const workers = 16
	const perWorker = 3

	var mu sync.Mutex
	rowsByStmt := make(map[string][]Row)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				stmt := statements[(w+i)%len(statements)]
				class := DefaultClass
				if (w+i)%2 == 1 {
					class = "batch"
				}
				res, err := tier.Execute(context.Background(), Request{
					Statement: stmt, Class: class, MaxObjects: 4,
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				mu.Lock()
				if prev, ok := rowsByStmt[stmt]; !ok {
					rowsByStmt[stmt] = res.Rows
				} else if !rowsEqual(prev, res.Rows) {
					errs <- fmt.Errorf("worker %d: rows diverged for %q", w, stmt)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := tier.Stats()
	if st.Cache.Misses != int64(len(statements)) {
		t.Fatalf("cache misses = %d, want %d (one preprocess per statement shape)",
			st.Cache.Misses, len(statements))
	}
	total := int64(0)
	for _, cs := range st.Classes {
		total += cs.Sessions
	}
	if total != workers*perWorker {
		t.Fatalf("sessions = %d, want %d", total, workers*perWorker)
	}
	for i, b := range st.Backends {
		if b.InflightSessions != 0 || b.InflightQuestions != 0 {
			t.Fatalf("backend %d leaked in-flight load: %+v", i, b)
		}
	}
}

func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ObjectID != b[i].ObjectID || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for k, v := range a[i].Values {
			if b[i].Values[k] != v {
				return false
			}
		}
	}
	return true
}
