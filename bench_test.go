// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per experiment of DESIGN.md's index), plus
// micro-benchmarks of the algorithm's hot components.
//
// The figure benchmarks run reduced configurations (few repetitions,
// small evaluation sets) so `go test -bench=.` completes in minutes; the
// full 30-repetition curves are regenerated with `cmd/disq-bench`.
// Each figure benchmark reports the final DisQ-family mean error as the
// custom metric "err" so regressions in *quality*, not just speed, show
// up in benchmark diffs.
package disq_test

import (
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	disq "repro"
	"repro/internal/baselines"
	"repro/internal/crowd"
	"repro/internal/experiment"
)

// benchFigure runs a registry experiment once per iteration at reduced
// scale.
func benchFigure(b *testing.B, id string) {
	fig, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := fig.Run(experiment.RunOptions{Reps: 2, EvalObjects: 30, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoint runs a single-budget experiment and reports the last
// algorithm's (the DisQ variant's) mean error as a quality metric.
func benchPoint(b *testing.B, spec experiment.Spec) {
	spec.Reps = 2
	spec.EvalObjects = 30
	var lastErr float64
	for i := 0; i < b.N; i++ {
		spec.BaseSeed = int64(i)
		res, err := experiment.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if len(r.PerRep) > 0 {
				lastErr = r.Mean
			}
		}
	}
	b.ReportMetric(lastErr, "err")
}

// --- Table benchmarks -----------------------------------------------------

func BenchmarkTable4(b *testing.B) { benchFigure(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchFigure(b, "table5") }

// --- Figure 1: proof of concept (one per panel) ----------------------------

func BenchmarkFig1aBmiVaryBPrc(b *testing.B)     { benchFigure(b, "fig1a") }
func BenchmarkFig1bProteinVaryBPrc(b *testing.B) { benchFigure(b, "fig1b") }
func BenchmarkFig1cBmiAgeVaryBPrc(b *testing.B)  { benchFigure(b, "fig1c") }
func BenchmarkFig1dBmiVaryBObj(b *testing.B)     { benchFigure(b, "fig1d") }
func BenchmarkFig1eProteinVaryBObj(b *testing.B) { benchFigure(b, "fig1e") }
func BenchmarkFig1fBmiAgeVaryBObj(b *testing.B)  { benchFigure(b, "fig1f") }

// --- Figure 2: necessary budget --------------------------------------------

func BenchmarkFig2RequiredBudget(b *testing.B) { benchFigure(b, "fig2") }

// --- Figure 3: GetNextAttribute ablation ------------------------------------

func BenchmarkFig3aOnlyQueryVaryBPrc(b *testing.B) { benchFigure(b, "fig3a") }
func BenchmarkFig3bOnlyQueryVaryBObj(b *testing.B) { benchFigure(b, "fig3b") }

// --- Figure 4: statistics-estimation variants --------------------------------

func BenchmarkFig4aStatVariantsVaryBPrc(b *testing.B) { benchFigure(b, "fig4a") }
func BenchmarkFig4bStatVariantsVaryBObj(b *testing.B) { benchFigure(b, "fig4b") }

// --- Section 5.3.1 coverage and Section 5.4 ablations ------------------------

func BenchmarkCoverage(b *testing.B)            { benchFigure(b, "coverage") }
func BenchmarkAblationQuality(b *testing.B)     { benchFigure(b, "ablation-quality") }
func BenchmarkAblationUnification(b *testing.B) { benchFigure(b, "ablation-unification") }
func BenchmarkAblationRho(b *testing.B)         { benchFigure(b, "ablation-rho") }
func BenchmarkAblationPricing(b *testing.B)     { benchFigure(b, "ablation-pricing") }
func BenchmarkSyntheticDomain(b *testing.B)     { benchFigure(b, "synthetic") }

// --- Headline quality points (error reported as the "err" metric) ------------

func BenchmarkQualityProtein4c(b *testing.B) {
	benchPoint(b, experiment.Spec{
		Name:       "quality-protein",
		Platform:   experiment.PlatformConfig{Domain: "recipes"},
		Targets:    []string{"Protein"},
		BObj:       crowd.Cents(4),
		BPrc:       crowd.Dollars(30),
		Algorithms: []baselines.Algorithm{baselines.DisQ{}},
	})
}

func BenchmarkQualityBmi4c(b *testing.B) {
	benchPoint(b, experiment.Spec{
		Name:       "quality-bmi",
		Platform:   experiment.PlatformConfig{Domain: "pictures"},
		Targets:    []string{"Bmi"},
		BObj:       crowd.Cents(4),
		BPrc:       crowd.Dollars(30),
		Algorithms: []baselines.Algorithm{baselines.DisQ{}},
	})
}

func BenchmarkQualityBmiAge4c(b *testing.B) {
	benchPoint(b, experiment.Spec{
		Name:       "quality-bmi-age",
		Platform:   experiment.PlatformConfig{Domain: "pictures"},
		Targets:    []string{"Bmi", "Age"},
		BObj:       crowd.Cents(4),
		BPrc:       crowd.Dollars(30),
		Algorithms: []baselines.Algorithm{baselines.DisQ{}},
	})
}

// --- Parallel-throughput figure benchmark ------------------------------------

// benchSweep runs the fig1a-style sweep at a fixed harness parallelism,
// reporting the DisQ mean error so the sequential and parallel variants
// can be checked for identical quality. The ns/op ratio between the two
// is the end-to-end parallel speedup (≈1 on one CPU, approaching the
// core count on multi-core machines).
func benchSweep(b *testing.B, parallelism int) {
	spec := experiment.Spec{
		Name:     "bench-sweep",
		Platform: experiment.PlatformConfig{Domain: "pictures"},
		Targets:  []string{"Bmi"},
		BObj:     crowd.Cents(4), BPrc: crowd.Dollars(30),
		Algorithms:  []baselines.Algorithm{baselines.NaiveAverage{}, baselines.DisQ{}},
		Reps:        2,
		EvalObjects: 30,
		Parallelism: parallelism,
	}
	grid := []crowd.Cost{crowd.Dollars(10), crowd.Dollars(20), crowd.Dollars(30)}
	var lastErr float64
	for i := 0; i < b.N; i++ {
		spec.BaseSeed = int64(i)
		sw, err := experiment.RunSweep(spec, experiment.VaryBPrc, grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range sw.Points {
			for _, r := range pt.Results {
				if r.Algorithm == "DisQ" && len(r.PerRep) > 0 {
					lastErr = r.Mean
				}
			}
		}
	}
	b.ReportMetric(lastErr, "err")
}

func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweep(b, 0) }

// --- Component micro-benchmarks ----------------------------------------------

// BenchmarkPreprocessSingleTarget measures one full offline phase.
func BenchmarkPreprocessSingleTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disq.Preprocess(p, disq.Query{Targets: []string{"Protein"}},
			disq.Cents(4), disq.Dollars(25), disq.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreprocessMultiTarget measures the Section 4 extension.
func BenchmarkPreprocessMultiTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := disq.NewSimPlatform(disq.Pictures(), disq.SimOptions{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := disq.Preprocess(p, disq.Query{Targets: []string{"Bmi", "Age"}},
			disq.Cents(4), disq.Dollars(30), disq.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineEvaluation measures the per-object online phase.
func BenchmarkOnlineEvaluation(b *testing.B) {
	p, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := disq.Preprocess(p, disq.Query{Targets: []string{"Protein"}},
		disq.Cents(4), disq.Dollars(25), disq.Options{})
	if err != nil {
		b.Fatal(err)
	}
	objs := p.Universe().NewObjects(rand.New(rand.NewSource(2)), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.EstimateObject(p, objs[i%len(objs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Remote (crowdhttp) online evaluation -------------------------------------

// remotePlan is a wide hand-built plan (12 support attributes over the
// recipes domain) so the batched-vs-unbatched round-trip ratio is the
// support size — the worst case for the per-attribute wire protocol.
func remotePlan() *disq.Plan {
	attrs := []string{
		"Calories", "Protein", "Number Of Eggs", "Number Of Ingredients",
		"Fat Amount", "Sugar", "Low Calories", "Dessert", "Healthy",
		"Vegetarian", "Has Eggs", "Has Meat",
	}
	counts := make(map[string]int, len(attrs))
	coefs := make([]float64, len(attrs))
	for i, a := range attrs {
		counts[a] = 1 + i%2
		coefs[i] = 0.1 * float64(i+1)
	}
	return &disq.Plan{
		Targets:     []string{"Protein"},
		Budget:      disq.Assignment{Counts: counts},
		Regressions: map[string]*disq.Regression{"Protein": {Attributes: attrs, Coefficients: coefs, Intercept: 2.5}},
	}
}

// remoteEval evaluates objs through a fresh same-seed client/server pair
// and reports the estimates, the steady-state transport counters (the
// warm-up object's traffic is excluded) and the wall time.
func remoteEval(tb testing.TB, seed int64, objs, warm []*disq.Object, unbatched bool) ([]map[string]float64, disq.TransportStats, time.Duration) {
	tb.Helper()
	plan := remotePlan()
	sim, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	srv := disq.NewCrowdServer(sim)
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	client := disq.NewCrowdClient(ts.URL, ts.Client())
	platform := disq.Platform(client)
	if unbatched {
		platform = disq.NewBatchedPlatform(client, -1)
	}
	for _, o := range append(warm, objs...) {
		srv.RegisterObject(o)
	}
	for _, o := range warm {
		if _, err := plan.EstimateObject(platform, disq.RefObject(o.ID)); err != nil {
			tb.Fatal(err)
		}
	}
	base := client.TransportStats()
	start := time.Now()
	out := make([]map[string]float64, len(objs))
	for i, o := range objs {
		est, err := plan.EstimateObject(platform, disq.RefObject(o.ID))
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = est
	}
	elapsed := time.Since(start)
	st := client.TransportStats()
	st.Requests -= base.Requests
	st.Batches -= base.Batches
	st.BatchItems -= base.BatchItems
	return out, st, elapsed
}

// TestRemoteBatchedEvaluation is the acceptance test for the batched
// wire protocol: evaluating 32 objects through an httptest crowdhttp
// server must cost ≥10× fewer HTTP round trips (and less wall time) than
// the unbatched per-attribute protocol, with estimates bit-equal to
// driving the simulator directly.
func TestRemoteBatchedEvaluation(t *testing.T) {
	const seed = 71
	plan := remotePlan()
	ref, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	objs := ref.Universe().NewObjects(rand.New(rand.NewSource(72)), 32)
	warm := ref.Universe().NewObjects(rand.New(rand.NewSource(73)), 1)
	want := make([]map[string]float64, len(objs))
	for i, o := range objs {
		if want[i], err = plan.EstimateObject(ref, o); err != nil {
			t.Fatal(err)
		}
	}

	batched, batchedSt, batchedTime := remoteEval(t, seed, objs, warm, false)
	unbatched, unbatchedSt, unbatchedTime := remoteEval(t, seed, objs, warm, true)

	if !reflect.DeepEqual(batched, want) {
		t.Fatalf("batched remote estimates diverge from direct evaluation:\nremote %v\ndirect %v", batched, want)
	}
	if !reflect.DeepEqual(unbatched, want) {
		t.Fatalf("unbatched remote estimates diverge from direct evaluation:\nremote %v\ndirect %v", unbatched, want)
	}
	if unbatchedSt.Requests < 10*batchedSt.Requests {
		t.Fatalf("round trips: unbatched %d vs batched %d — want ≥10× reduction",
			unbatchedSt.Requests, batchedSt.Requests)
	}
	if batchedSt.Batches != int64(len(objs)) {
		t.Fatalf("batched evaluation sent %d batch requests for %d objects", batchedSt.Batches, len(objs))
	}
	if batchedTime >= unbatchedTime {
		t.Fatalf("batched evaluation was not faster: %v vs %v (requests %d vs %d)",
			batchedTime, unbatchedTime, batchedSt.Requests, unbatchedSt.Requests)
	}
	t.Logf("32 objects: batched %d requests in %v, unbatched %d requests in %v",
		batchedSt.Requests, batchedTime, unbatchedSt.Requests, unbatchedTime)
}

// benchRemoteEvaluation measures one remote object evaluation per
// iteration, each against uncached objects (the steady state of scoring
// a database through a crowdhttp deployment).
func benchRemoteEvaluation(b *testing.B, unbatched bool) {
	plan := remotePlan()
	sim, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 81})
	if err != nil {
		b.Fatal(err)
	}
	srv := disq.NewCrowdServer(sim)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	client := disq.NewCrowdClient(ts.URL, ts.Client())
	platform := disq.Platform(client)
	if unbatched {
		platform = disq.NewBatchedPlatform(client, -1)
	}
	objs := sim.Universe().NewObjects(rand.New(rand.NewSource(82)), b.N+1)
	for _, o := range objs {
		srv.RegisterObject(o)
	}
	// Warm pricing/meta/canonical caches outside the timed loop.
	if _, err := plan.EstimateObject(platform, disq.RefObject(objs[b.N].ID)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.EstimateObject(platform, disq.RefObject(objs[i].ID)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteOnlineBatched(b *testing.B)   { benchRemoteEvaluation(b, false) }
func BenchmarkRemoteOnlineUnbatched(b *testing.B) { benchRemoteEvaluation(b, true) }

// BenchmarkSimValueQuestion measures raw simulated crowd throughput.
func BenchmarkSimValueQuestion(b *testing.B) {
	p, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	objs := p.Universe().NewObjects(rand.New(rand.NewSource(3)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Value(objs[i%len(objs)], "Calories", 1); err != nil {
			b.Fatal(err)
		}
	}
}
