// Command disq-advise answers the paper's Section 7 open question for a
// concrete workload: given one total budget and the number of objects to
// process, how should the money be split between the offline preprocessing
// phase and the online per-object phase?
//
// Usage:
//
//	disq-advise -domain recipes -targets Protein -total 60 -objects 400
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domain"
)

func main() {
	var (
		domainName = flag.String("domain", "recipes", "domain: pictures, recipes, houses, laptops")
		targets    = flag.String("targets", "Protein", "comma-separated query attributes")
		total      = flag.Float64("total", 60, "total budget in dollars")
		objects    = flag.Int("objects", 400, "objects the online phase will process")
		seed       = flag.Int64("seed", 1, "base platform seed")
		fractions  = flag.String("fractions", "0.2,0.35,0.5,0.65,0.8", "preprocessing shares to try")
	)
	flag.Parse()
	if err := run(*domainName, *targets, *total, *objects, *seed, *fractions); err != nil {
		fmt.Fprintln(os.Stderr, "disq-advise:", err)
		os.Exit(1)
	}
}

func run(domainName, targetList string, totalDollars float64, objects int, seed int64, fractionList string) error {
	build, ok := domain.Registry()[domainName]
	if !ok {
		return fmt.Errorf("unknown domain %q", domainName)
	}
	var targets []string
	for _, t := range strings.Split(targetList, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, t)
		}
	}
	var fractions []float64
	for _, f := range strings.Split(fractionList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("bad fraction %q: %w", f, err)
		}
		fractions = append(fractions, v)
	}
	trialSeed := seed
	factory := func() (crowd.Platform, error) {
		trialSeed++
		return crowd.NewSim(build(), crowd.SimOptions{Seed: trialSeed})
	}
	total := crowd.Dollars(totalDollars)
	fmt.Printf("splitting %v across preprocessing + %d objects (domain %s, targets %v)\n\n",
		total, objects, domainName, targets)
	splits, err := core.AdviseBudgetSplit(factory, core.Query{Targets: targets},
		total, objects, fractions, core.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-12s %-12s %14s %12s\n", "fraction", "B_prc", "B_obj", "pred. error", "attributes")
	for _, s := range splits {
		fmt.Printf("%-10.2f %-12s %-12s %14.4f %12d\n",
			s.Fraction, s.Preprocess, s.PerObject, s.PredictedError, len(s.Discovered()))
	}
	best := splits[0]
	fmt.Printf("\nrecommendation: spend %s on preprocessing (%.0f%%), %s per object\n",
		best.Preprocess, 100*best.Fraction, best.PerObject)
	for _, t := range best.Plan.Targets {
		fmt.Printf("  %s\n", best.Plan.Formula(t))
	}
	return nil
}
