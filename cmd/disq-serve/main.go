// Command disq-serve runs a simulated crowd platform as a standalone HTTP
// service, so the DisQ pipeline (cmd/disq, or any crowdhttp.Client) can
// run against it from another process — the deployment topology of a real
// crowdsourcing integration.
//
// Two modes:
//
//   - Default: the question-level API (/v1/value, /v1/dismantle, ...) over
//     one platform; the client runs the pipeline and budgets itself.
//   - -serve-queries: the multi-tenant query API (/v1/serve/query,
//     /v1/serve/stats) over -backends simulated platforms behind a
//     serve.Tier — plan cache with single-flight preprocessing, pluggable
//     routing (-route), and per-class token-bucket admission control
//     (-admission). Clients POST whole statements — including ORDER BY
//     ... LIMIT top-k and per-request "lazy": true sessions through the
//     lazy predicate-ordered evaluator; see cmd/disq-load.
//
// Fault injection (for rehearsing the retrying client against a flaky
// deployment): -fail-rate rejects a fraction of requests with 503 before
// they execute, -drop-rate loses responses after execution (recoverable
// only through the client's idempotency keys), -latency delays every
// request, -fail-after N makes every request after the first N fail, and
// -short-rate truncates value/example batches at the platform.
//
// Observability: GET /v1/stats (question mode) or /v1/serve/stats (query
// mode); -pprof-addr serves net/http/pprof on a separate (loopback by
// default) listener. On SIGINT/SIGTERM the server drains in-flight
// requests, closes its listeners and prints a final stats snapshot.
//
// Usage:
//
//	disq-serve -domain recipes -addr :8080 -seed 42
//	disq-serve -domain recipes -fail-rate 0.1 -drop-rate 0.05 -latency 20ms
//	disq-serve -domain recipes -serve-queries -backends 4 -route least-loaded
//	disq-serve -serve-queries -backends 4 -shards 4 -partition hash
//	disq-serve -serve-queries -admission 'interactive=50:100,batch=5:10:64'
//	# elsewhere: client := disq.NewCrowdClient("http://host:8080", nil)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served via -pprof-addr
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/crowd"
	"repro/internal/crowdhttp"
	"repro/internal/domain"
	"repro/internal/serve"
)

// drainTimeout bounds graceful shutdown: in-flight requests get this long
// to finish after SIGINT/SIGTERM before the server is torn down.
const drainTimeout = 10 * time.Second

type config struct {
	domainName string
	addr       string
	seed       int64
	spam       float64
	filterEff  float64
	register   int

	serveQueries bool
	backends     int
	route        string
	shards       int
	partition    string
	cacheSize    int
	answerCache  int
	answerTTL    time.Duration
	admission    string
	bObjCents    float64
	bPrcDollars  float64

	faults    crowdhttp.FaultOptions
	shortRate float64
	pprofAddr string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.domainName, "domain", "recipes", "domain: pictures, recipes, houses, laptops")
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.Int64Var(&cfg.seed, "seed", 1, "platform seed")
	flag.Float64Var(&cfg.spam, "spam", 0, "spam worker rate (0..1)")
	flag.Float64Var(&cfg.filterEff, "filter", 0.9, "spam filter efficiency (0..1)")
	flag.IntVar(&cfg.register, "register", 100, "database objects to pre-register for online evaluation")

	flag.BoolVar(&cfg.serveQueries, "serve-queries", false, "serve the multi-tenant query API instead of the question-level API")
	flag.IntVar(&cfg.backends, "backends", 2, "query mode: simulated crowd backends to multiplex sessions over")
	flag.StringVar(&cfg.route, "route", "", "query mode: routing policy (round-robin, least-loaded, plan-affinity)")
	flag.IntVar(&cfg.shards, "shards", 0, "query mode: object partitions evaluated in parallel per query (0/1 = unsharded; >1 makes the backends replicas)")
	flag.StringVar(&cfg.partition, "partition", "", "query mode: shard-assignment policy (hash, range)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 64, "query mode: plan cache capacity (LRU beyond it)")
	flag.IntVar(&cfg.answerCache, "answer-cache", 4096, "query mode: shared answer-reuse cache capacity in cached answer means (0 = off; sessions opt in per request)")
	flag.DurationVar(&cfg.answerTTL, "answer-ttl", 0, "query mode: expire cached answer means after this long (0 = never)")
	flag.StringVar(&cfg.admission, "admission", "", "query mode: per-class token buckets, 'class=rate:burst[:queue[:maxwait]]' comma-separated (e.g. 'batch=5:10:64')")
	flag.Float64Var(&cfg.bObjCents, "bobj-cents", 4, "query mode: default per-object budget, cents")
	flag.Float64Var(&cfg.bPrcDollars, "bprc-dollars", 10, "query mode: default preprocessing budget, dollars")

	flag.Float64Var(&cfg.faults.FailRate, "fail-rate", 0, "inject: fraction of requests rejected with 503 before executing (0..1)")
	flag.Float64Var(&cfg.faults.DropRate, "drop-rate", 0, "inject: fraction of executed responses dropped, recovered via idempotent replay (0..1)")
	flag.IntVar(&cfg.faults.FailAfter, "fail-after", 0, "inject: every request after the first N fails with 503 (0 = off)")
	flag.DurationVar(&cfg.faults.Latency, "latency", 0, "inject: added latency per request")
	flag.Float64Var(&cfg.shortRate, "short-rate", 0, "inject: fraction of value/example batches truncated at the platform (0..1)")
	flag.Int64Var(&cfg.faults.Seed, "fault-seed", 0, "fault-injection seed (default: platform seed)")

	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	flag.Parse()

	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "disq-serve: invalid flags:", err)
		os.Exit(2)
	}
	if cfg.faults.Seed == 0 {
		cfg.faults.Seed = cfg.seed
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "disq-serve:", err)
		os.Exit(1)
	}
}

// validate rejects out-of-range flag values before any listener opens, so
// a typo'd rate fails loudly instead of silently serving garbage.
func (c *config) validate() error {
	checkUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("-%s must be in [0,1], got %v", name, v)
		}
		return nil
	}
	for _, u := range []struct {
		name string
		v    float64
	}{
		{"spam", c.spam}, {"filter", c.filterEff},
		{"fail-rate", c.faults.FailRate}, {"drop-rate", c.faults.DropRate},
		{"short-rate", c.shortRate},
	} {
		if err := checkUnit(u.name, u.v); err != nil {
			return err
		}
	}
	if c.register < 0 {
		return fmt.Errorf("-register must be >= 0, got %d", c.register)
	}
	if c.faults.FailAfter < 0 {
		return fmt.Errorf("-fail-after must be >= 0, got %d", c.faults.FailAfter)
	}
	if c.faults.Latency < 0 {
		return fmt.Errorf("-latency must be >= 0, got %v", c.faults.Latency)
	}
	if c.serveQueries {
		if c.backends < 1 {
			return fmt.Errorf("-backends must be >= 1, got %d", c.backends)
		}
		if c.cacheSize < 1 {
			return fmt.Errorf("-cache-size must be >= 1, got %d", c.cacheSize)
		}
		if c.bObjCents <= 0 || c.bPrcDollars <= 0 {
			return fmt.Errorf("-bobj-cents and -bprc-dollars must be > 0")
		}
		if _, err := serve.NewRouter(c.route); err != nil {
			return err
		}
		if c.shards < 0 {
			return fmt.Errorf("-shards must be >= 0, got %d", c.shards)
		}
		if c.answerCache < 0 {
			return fmt.Errorf("-answer-cache must be >= 0, got %d", c.answerCache)
		}
		if c.answerTTL < 0 {
			return fmt.Errorf("-answer-ttl must be >= 0, got %v", c.answerTTL)
		}
		if _, err := serve.NewPartitioner(c.partition); err != nil {
			return err
		}
		if _, err := parseAdmission(c.admission); err != nil {
			return err
		}
	}
	return nil
}

// parseAdmission decodes 'class=rate:burst[:queue[:maxwait]]' pairs, e.g.
// 'interactive=50:100,batch=5:10:64:2s'.
func parseAdmission(s string) (map[string]serve.BucketConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]serve.BucketConfig)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		class, spec, ok := strings.Cut(entry, "=")
		if !ok || class == "" {
			return nil, fmt.Errorf("-admission entry %q: want class=rate:burst[:queue[:maxwait]]", entry)
		}
		parts := strings.Split(spec, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("-admission entry %q: want rate:burst[:queue[:maxwait]]", entry)
		}
		var bc serve.BucketConfig
		var err error
		if bc.Rate, err = strconv.ParseFloat(parts[0], 64); err != nil || bc.Rate < 0 {
			return nil, fmt.Errorf("-admission %q: bad rate %q", class, parts[0])
		}
		if bc.Burst, err = strconv.Atoi(parts[1]); err != nil || bc.Burst < 0 {
			return nil, fmt.Errorf("-admission %q: bad burst %q", class, parts[1])
		}
		if len(parts) >= 3 {
			if bc.MaxQueue, err = strconv.Atoi(parts[2]); err != nil || bc.MaxQueue < 0 {
				return nil, fmt.Errorf("-admission %q: bad queue %q", class, parts[2])
			}
		}
		if len(parts) == 4 {
			if bc.MaxWait, err = time.ParseDuration(parts[3]); err != nil || bc.MaxWait < 0 {
				return nil, fmt.Errorf("-admission %q: bad maxwait %q", class, parts[3])
			}
		}
		out[class] = bc
	}
	return out, nil
}

func run(cfg config) error {
	build, ok := domain.Registry()[cfg.domainName]
	if !ok {
		return fmt.Errorf("unknown domain %q", cfg.domainName)
	}
	u := build()

	var (
		handler    http.Handler
		finalStats func() interface{}
	)
	if cfg.serveQueries {
		h, stats, err := buildQueryTier(cfg, u)
		if err != nil {
			return err
		}
		handler, finalStats = h, stats
	} else {
		h, stats, err := buildQuestionServer(cfg, u)
		if err != nil {
			return err
		}
		handler, finalStats = h, stats
	}

	listener, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		pprofListener, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pprofListener.Addr())
		// The pprof import registers on the default mux; serve it on its
		// own listener so profiling stays off the public API address.
		go func() { _ = http.Serve(pprofListener, http.DefaultServeMux) }()
	}

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(listener) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain: stop accepting, let in-flight requests finish, then flush a
	// final stats snapshot so a scripted run (CI smoke, load tests)
	// captures the server-side counters on the way out.
	fmt.Println("disq-serve: signal received, draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if finalStats != nil {
		if out, err := json.MarshalIndent(finalStats(), "", "  "); err == nil {
			fmt.Printf("final stats:\n%s\n", out)
		}
	}
	fmt.Println("disq-serve: drained, bye")
	return nil
}

// buildQuestionServer assembles the question-level API (the original
// single-platform mode).
func buildQuestionServer(cfg config, u *domain.Universe) (http.Handler, func() interface{}, error) {
	sim, err := crowd.NewSim(u, crowd.SimOptions{
		Seed:             cfg.seed,
		SpamRate:         cfg.spam,
		FilterEfficiency: cfg.filterEff,
	})
	if err != nil {
		return nil, nil, err
	}
	var platform crowd.Platform = sim
	if cfg.shortRate > 0 {
		platform = crowd.NewFaulty(sim, crowd.FaultyOptions{Seed: cfg.faults.Seed, ShortRate: cfg.shortRate})
	}
	injecting := cfg.faults.FailRate > 0 || cfg.faults.DropRate > 0 || cfg.faults.FailAfter > 0 ||
		cfg.faults.Latency > 0 || cfg.shortRate > 0
	var server *crowdhttp.Server
	if injecting {
		server = crowdhttp.NewFaultyServer(platform, cfg.faults)
	} else {
		server = crowdhttp.NewServer(platform)
	}
	// Pre-register a batch of "database" objects so clients can evaluate
	// them by id (ids are printed for convenience).
	objs := u.NewObjects(rand.New(rand.NewSource(cfg.seed^0xdb)), cfg.register)
	for _, o := range objs {
		server.RegisterObject(o)
	}
	fmt.Printf("serving %q crowd platform on http://%s (stats at /v1/stats)\n", cfg.domainName, cfg.addr)
	if injecting {
		fmt.Printf("fault injection: fail-rate %.2f drop-rate %.2f fail-after %d latency %s short-rate %.2f (seed %d)\n",
			cfg.faults.FailRate, cfg.faults.DropRate, cfg.faults.FailAfter, cfg.faults.Latency, cfg.shortRate, cfg.faults.Seed)
	}
	if cfg.register > 0 {
		fmt.Printf("registered database objects: ids %d..%d\n", objs[0].ID, objs[len(objs)-1].ID)
	}
	return server.Handler(), func() interface{} {
		return map[string]int64{"injected_faults": server.InjectedFaults()}
	}, nil
}

// buildQueryTier assembles the multi-tenant query API: -backends sims
// over one shared universe (consistent object ids across backends)
// behind a serve.Tier.
func buildQueryTier(cfg config, u *domain.Universe) (http.Handler, func() interface{}, error) {
	// Objects first: snapshots taken inside serve.New pin the universe's
	// id watermark, so the database must exist before the tier does.
	objs := u.NewObjects(rand.New(rand.NewSource(cfg.seed^0xdb)), cfg.register)
	admission, err := parseAdmission(cfg.admission)
	if err != nil {
		return nil, nil, err
	}
	tierCfg := serve.Config{
		Domain:      cfg.domainName,
		Objects:     objs,
		Policy:      cfg.route,
		Shards:      cfg.shards,
		Partition:   cfg.partition,
		CacheSize:   cfg.cacheSize,
		AnswerCache: cfg.answerCache,
		AnswerTTL:   cfg.answerTTL,
		DefaultBObj: crowd.Cost(cfg.bObjCents * 10),
		DefaultBPrc: crowd.Cost(cfg.bPrcDollars * 1000),
		Admission:   admission,
	}
	for i := 0; i < cfg.backends; i++ {
		// Unsharded backends get distinct seeds (independent crowds);
		// sharded tiers need replicas — every shard of a query must draw
		// the same answer streams, or the scattered estimates would
		// depend on which backend a shard landed on.
		seed := cfg.seed + int64(i)
		if cfg.shards > 1 {
			seed = cfg.seed
		}
		sim, err := crowd.NewSim(u, crowd.SimOptions{
			Seed:             seed,
			SpamRate:         cfg.spam,
			FilterEfficiency: cfg.filterEff,
		})
		if err != nil {
			return nil, nil, err
		}
		tierCfg.Backends = append(tierCfg.Backends, serve.Backend{
			Name:     fmt.Sprintf("sim-%d", i),
			Platform: sim,
		})
	}
	tier, err := serve.New(tierCfg)
	if err != nil {
		return nil, nil, err
	}
	st := tier.Stats()
	fmt.Printf("serving %q query tier on http://%s (%d backends, policy %s, %d shard(s) via %s, stats at %s)\n",
		cfg.domainName, cfg.addr, cfg.backends, st.Policy, st.Shards, st.Partition, crowdhttp.PathServeStats)
	if cfg.register > 0 {
		fmt.Printf("registered database objects: ids %d..%d\n", objs[0].ID, objs[len(objs)-1].ID)
	}
	return crowdhttp.NewQueryServer(tier).Handler(), func() interface{} { return tier.Stats() }, nil
}
