// Command disq-serve runs a simulated crowd platform as a standalone HTTP
// service, so the DisQ pipeline (cmd/disq, or any crowdhttp.Client) can
// run against it from another process — the deployment topology of a real
// crowdsourcing integration.
//
// Usage:
//
//	disq-serve -domain recipes -addr :8080 -seed 42
//	# elsewhere: client := disq.NewCrowdClient("http://host:8080", nil)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"

	"repro/internal/crowd"
	"repro/internal/crowdhttp"
	"repro/internal/domain"
)

func main() {
	var (
		domainName = flag.String("domain", "recipes", "domain: pictures, recipes, houses, laptops")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed       = flag.Int64("seed", 1, "platform seed")
		spam       = flag.Float64("spam", 0, "spam worker rate")
		filterEff  = flag.Float64("filter", 0.9, "spam filter efficiency")
		register   = flag.Int("register", 100, "database objects to pre-register for online evaluation")
	)
	flag.Parse()
	if err := run(*domainName, *addr, *seed, *spam, *filterEff, *register); err != nil {
		fmt.Fprintln(os.Stderr, "disq-serve:", err)
		os.Exit(1)
	}
}

func run(domainName, addr string, seed int64, spam, filterEff float64, register int) error {
	build, ok := domain.Registry()[domainName]
	if !ok {
		return fmt.Errorf("unknown domain %q", domainName)
	}
	u := build()
	sim, err := crowd.NewSim(u, crowd.SimOptions{
		Seed:             seed,
		SpamRate:         spam,
		FilterEfficiency: filterEff,
	})
	if err != nil {
		return err
	}
	server := crowdhttp.NewServer(sim)
	// Pre-register a batch of "database" objects so clients can evaluate
	// them by id (ids are printed for convenience).
	objs := u.NewObjects(rand.New(rand.NewSource(seed^0xdb)), register)
	for _, o := range objs {
		server.RegisterObject(o)
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %q crowd platform on http://%s\n", domainName, listener.Addr())
	if register > 0 {
		fmt.Printf("registered database objects: ids %d..%d\n", objs[0].ID, objs[len(objs)-1].ID)
	}
	return http.Serve(listener, server.Handler())
}
