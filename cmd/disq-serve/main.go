// Command disq-serve runs a simulated crowd platform as a standalone HTTP
// service, so the DisQ pipeline (cmd/disq, or any crowdhttp.Client) can
// run against it from another process — the deployment topology of a real
// crowdsourcing integration.
//
// Fault injection (for rehearsing the retrying client against a flaky
// deployment): -fail-rate rejects a fraction of requests with 503 before
// they execute, -drop-rate loses responses after execution (recoverable
// only through the client's idempotency keys), -latency delays every
// request, -fail-after N makes every request after the first N fail, and
// -short-rate truncates value/example batches at the platform.
//
// Observability: GET /v1/stats reports request counts per endpoint,
// batch/replay counters and injected faults; -pprof-addr serves
// net/http/pprof on a separate (loopback by default) listener.
//
// Usage:
//
//	disq-serve -domain recipes -addr :8080 -seed 42
//	disq-serve -domain recipes -fail-rate 0.1 -drop-rate 0.05 -latency 20ms
//	disq-serve -domain recipes -pprof-addr 127.0.0.1:6060
//	# elsewhere: client := disq.NewCrowdClient("http://host:8080", nil)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served via -pprof-addr
	"os"

	"repro/internal/crowd"
	"repro/internal/crowdhttp"
	"repro/internal/domain"
)

func main() {
	var (
		domainName = flag.String("domain", "recipes", "domain: pictures, recipes, houses, laptops")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		seed       = flag.Int64("seed", 1, "platform seed")
		spam       = flag.Float64("spam", 0, "spam worker rate")
		filterEff  = flag.Float64("filter", 0.9, "spam filter efficiency")
		register   = flag.Int("register", 100, "database objects to pre-register for online evaluation")

		failRate  = flag.Float64("fail-rate", 0, "inject: fraction of requests rejected with 503 before executing")
		dropRate  = flag.Float64("drop-rate", 0, "inject: fraction of executed responses dropped (recovered via idempotent replay)")
		failAfter = flag.Int("fail-after", 0, "inject: every request after the first N fails with 503 (0 = off)")
		latency   = flag.Duration("latency", 0, "inject: added latency per request")
		shortRate = flag.Float64("short-rate", 0, "inject: fraction of value/example batches truncated at the platform")
		faultSeed = flag.Int64("fault-seed", 0, "fault-injection seed (default: platform seed)")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	)
	flag.Parse()
	faults := crowdhttp.FaultOptions{
		Seed:      *faultSeed,
		FailRate:  *failRate,
		DropRate:  *dropRate,
		FailAfter: *failAfter,
		Latency:   *latency,
	}
	if faults.Seed == 0 {
		faults.Seed = *seed
	}
	if err := run(*domainName, *addr, *seed, *spam, *filterEff, *register, faults, *shortRate, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "disq-serve:", err)
		os.Exit(1)
	}
}

func run(domainName, addr string, seed int64, spam, filterEff float64, register int,
	faults crowdhttp.FaultOptions, shortRate float64, pprofAddr string) error {
	build, ok := domain.Registry()[domainName]
	if !ok {
		return fmt.Errorf("unknown domain %q", domainName)
	}
	u := build()
	sim, err := crowd.NewSim(u, crowd.SimOptions{
		Seed:             seed,
		SpamRate:         spam,
		FilterEfficiency: filterEff,
	})
	if err != nil {
		return err
	}
	var platform crowd.Platform = sim
	if shortRate > 0 {
		platform = crowd.NewFaulty(sim, crowd.FaultyOptions{Seed: faults.Seed, ShortRate: shortRate})
	}
	injecting := faults.FailRate > 0 || faults.DropRate > 0 || faults.FailAfter > 0 ||
		faults.Latency > 0 || shortRate > 0
	var server *crowdhttp.Server
	if injecting {
		server = crowdhttp.NewFaultyServer(platform, faults)
	} else {
		server = crowdhttp.NewServer(platform)
	}
	// Pre-register a batch of "database" objects so clients can evaluate
	// them by id (ids are printed for convenience).
	objs := u.NewObjects(rand.New(rand.NewSource(seed^0xdb)), register)
	for _, o := range objs {
		server.RegisterObject(o)
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		pprofListener, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", pprofListener.Addr())
		// The pprof import registers on the default mux; serve it on its
		// own listener so profiling stays off the public API address.
		go func() { _ = http.Serve(pprofListener, http.DefaultServeMux) }()
	}
	fmt.Printf("serving %q crowd platform on http://%s (stats at /v1/stats)\n", domainName, listener.Addr())
	if injecting {
		fmt.Printf("fault injection: fail-rate %.2f drop-rate %.2f fail-after %d latency %s short-rate %.2f (seed %d)\n",
			faults.FailRate, faults.DropRate, faults.FailAfter, faults.Latency, shortRate, faults.Seed)
	}
	if register > 0 {
		fmt.Printf("registered database objects: ids %d..%d\n", objs[0].ID, objs[len(objs)-1].ID)
	}
	return http.Serve(listener, server.Handler())
}
