// Command disq runs the DisQ pipeline end to end on a simulated crowd
// platform: preprocessing (attribute dismantling, statistics, budget
// distribution, regression learning) followed by online evaluation of a
// batch of objects, reporting the derived formulas, the spend and the
// achieved error.
//
// Usage:
//
//	disq -domain recipes -targets Protein -bobj 4 -bprc 25 -objects 50
//	disq -domain pictures -targets Bmi,Age -seed 7 -verbose
//	disq -domain recipes -query "SELECT Calories WHERE Dessert > 0.5"
//	disq -domain recipes -targets Protein -save-plan plan.json
//	disq -domain recipes -load-plan plan.json -objects 100
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domain"
	"repro/internal/query"
	"repro/internal/stats"
)

type config struct {
	domainName string
	targets    string
	queryText  string
	bObjCents  float64
	bPrcDollar float64
	objects    int
	seed       int64
	simple     bool
	verbose    bool
	trace      bool
	savePlan   string
	loadPlan   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.domainName, "domain", "recipes", "domain: pictures, recipes, houses, laptops")
	flag.StringVar(&cfg.targets, "targets", "Protein", "comma-separated query attributes")
	flag.StringVar(&cfg.queryText, "query", "", "SQL-style statement (overrides -targets), e.g. \"SELECT Calories WHERE Dessert > 0.5\"")
	flag.Float64Var(&cfg.bObjCents, "bobj", 4, "per-object online budget in cents")
	flag.Float64Var(&cfg.bPrcDollar, "bprc", 25, "offline preprocessing budget in dollars")
	flag.IntVar(&cfg.objects, "objects", 30, "objects to evaluate online")
	flag.Int64Var(&cfg.seed, "seed", 1, "platform seed")
	flag.BoolVar(&cfg.simple, "simple", false, "disable dismantling (SimpleDisQ)")
	flag.BoolVar(&cfg.verbose, "verbose", false, "print per-object estimates")
	flag.BoolVar(&cfg.trace, "trace", false, "print every preprocessing decision")
	flag.StringVar(&cfg.savePlan, "save-plan", "", "write the derived plan to this JSON file")
	flag.StringVar(&cfg.loadPlan, "load-plan", "", "skip preprocessing and load a saved plan")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "disq:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	build, ok := domain.Registry()[cfg.domainName]
	if !ok {
		return fmt.Errorf("unknown domain %q (have: pictures, recipes, houses, laptops)", cfg.domainName)
	}
	u := build()
	p, err := crowd.NewSim(u, crowd.SimOptions{Seed: cfg.seed})
	if err != nil {
		return err
	}

	var statement *query.Statement
	var targets []string
	if cfg.queryText != "" {
		statement, err = query.Parse(cfg.queryText)
		if err != nil {
			return err
		}
		targets = statement.Attributes()
	} else {
		for _, t := range strings.Split(cfg.targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
	}
	bObj := crowd.Cents(cfg.bObjCents)
	bPrc := crowd.Dollars(cfg.bPrcDollar)
	fmt.Printf("domain=%s targets=%v B_obj=%v B_prc=%v\n\n", cfg.domainName, targets, bObj, bPrc)

	plan, err := obtainPlan(cfg, p, targets, bObj, bPrc)
	if err != nil {
		return err
	}
	if cfg.savePlan != "" {
		if err := plan.Save(cfg.savePlan); err != nil {
			return err
		}
		fmt.Printf("plan saved to %s\n", cfg.savePlan)
	}

	fmt.Println("\n== online phase ==")
	objs := u.NewObjects(rand.New(rand.NewSource(cfg.seed^0x0b9ec7)), cfg.objects)
	online := crowd.NewLedger(0)
	p.SetLedger(online)
	if statement != nil {
		if err := runQuery(p, plan, statement, objs); err != nil {
			return err
		}
	} else if err := runEstimation(cfg, p, u, plan, objs); err != nil {
		return err
	}
	fmt.Printf("\nevaluated %d objects for %v (%v per object)\n",
		len(objs), online.Spent(), online.Spent()/crowd.Cost(len(objs)))
	return nil
}

func obtainPlan(cfg config, p crowd.Platform, targets []string, bObj, bPrc crowd.Cost) (*core.Plan, error) {
	if cfg.loadPlan != "" {
		plan, err := core.LoadPlan(cfg.loadPlan)
		if err != nil {
			return nil, err
		}
		fmt.Printf("== plan loaded from %s ==\n", cfg.loadPlan)
		for _, t := range plan.Targets {
			fmt.Printf("formula: %s\n", plan.Formula(t))
		}
		return plan, nil
	}
	fmt.Println("== preprocessing (offline phase) ==")
	opts := core.Options{DisableDismantling: cfg.simple}
	if cfg.trace {
		opts.Trace = func(e core.TraceEvent) { fmt.Println("  " + e.String()) }
	}
	plan, err := core.Preprocess(p, core.Query{Targets: targets}, bObj, bPrc, opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("spent:               %v of %v\n", plan.PreprocessCost, bPrc)
	fmt.Printf("dismantling asked:   %d questions\n", plan.Dismantles)
	fmt.Printf("attributes found:    %s\n", strings.Join(plan.Discovered, ", "))
	fmt.Printf("budget distribution: %v (per-object cost %v)\n", plan.Budget.Counts, plan.PerObjectCost())
	for _, t := range plan.Targets {
		fmt.Printf("formula:             %s   (N2=%d examples)\n", plan.Formula(t), plan.TrainingExamples[t])
	}
	return plan, nil
}

func runQuery(p crowd.Platform, plan *core.Plan, statement *query.Statement, objs []*domain.Object) error {
	engine, err := query.NewEngine(p, plan, statement)
	if err != nil {
		return err
	}
	rows, err := engine.Execute(statement, objs)
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n%d of %d objects match:\n", statement, len(rows), len(objs))
	for _, r := range rows {
		fmt.Printf("  object %4d:", r.Object.ID)
		for _, a := range statement.Select {
			fmt.Printf("  %s=%.2f", a, r.Values[a])
		}
		fmt.Println()
	}
	return nil
}

func runEstimation(cfg config, p crowd.Platform, u *domain.Universe, plan *core.Plan, objs []*domain.Object) error {
	preds := make(map[string][]float64)
	truths := make(map[string][]float64)
	for _, o := range objs {
		est, err := plan.EstimateObject(p, o)
		if err != nil {
			return err
		}
		for _, t := range plan.Targets {
			truth, err := u.Truth(o, t)
			if err != nil {
				return err
			}
			preds[t] = append(preds[t], est[t])
			truths[t] = append(truths[t], truth)
			if cfg.verbose {
				fmt.Printf("  object %4d  %-12s est %10.2f  truth %10.2f\n", o.ID, t, est[t], truth)
			}
		}
	}
	for _, t := range plan.Targets {
		mse, err := stats.MeanSquaredError(preds[t], truths[t])
		if err != nil {
			return err
		}
		sd, _ := stats.StdDev(truths[t])
		fmt.Printf("  %-14s RMSE %10.3f   (truth σ %.3f)\n", t, math.Sqrt(mse), sd)
	}
	return nil
}
