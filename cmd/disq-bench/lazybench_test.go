package main

import "testing"

// TestRunLazyBenchContract runs the lazy spend arms for real (pinned
// environment, deterministic money) and checks both headline ratios
// clear their compare-gate contracts — so a regression fails in go test,
// not just in the CI bench diff.
func TestRunLazyBenchContract(t *testing.T) {
	var r benchReport
	if err := runLazyBench(&r); err != nil {
		t.Fatal(err)
	}
	if r.PredicateSkipGain < 2 {
		t.Fatalf("predicate_skip_gain = %.3f, contract >= 2", r.PredicateSkipGain)
	}
	if r.TopKPruneGain < 1.1 {
		t.Fatalf("topk_prune_gain = %.3f, contract >= 1.1", r.TopKPruneGain)
	}
	if len(r.Benchmarks) != 4 {
		t.Fatalf("lazy arms recorded %d bench entries, want 4", len(r.Benchmarks))
	}
}
