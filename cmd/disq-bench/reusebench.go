package main

import (
	"context"
	"fmt"
	"math/rand"

	disq "repro"
	"repro/internal/crowd"
	"repro/internal/serve"
)

// runReuseBench measures the answer cache's spend headline: the same
// four-session workload with overlapping evaluation windows, once with
// every session opted into the tier's shared answer cache and once
// without. The environment is pinned (fixed simulator seed and object
// draw, independent of -seed) and the metric is deterministic money —
// the simulator's answer streams are a pure function of the seed, so a
// cached mean is bit-identical to a re-purchased one and the only thing
// reuse changes is the bill.
//
// The workload: 32 objects, four eager SELECT sessions over 16-object
// windows stepped by 8 (wrapping), so every object is evaluated by
// exactly two sessions. Without reuse that is 64 paid object
// evaluations; with reuse the second session over each object reads the
// first one's published means, leaving 32 — the gain is exactly 2.0 by
// construction, and the compare gate holds it above 1.5. The arms run
// in ABBA order (off/on/on/off) on fresh tiers and each side's two runs
// are asserted equal, which pins the determinism the headline rests on.
func runReuseBench(report *benchReport) error {
	const (
		reuseSeed = 103
		objSeed   = 23
		nObjects  = 32
		window    = 16
		step      = 8
		nSessions = 4
		statement = "SELECT Protein"
	)
	u := disq.Recipes()
	// One extra object (never in a measured window) warms the plan cache
	// so PreprocessCost stays out of both arms' online spend; the warm
	// session runs without ReuseAnswers, so it publishes nothing.
	objs := u.NewObjects(rand.New(rand.NewSource(objSeed)), nObjects+1)
	warmID := objs[nObjects].ID

	runArm := func(reuse bool) (crowd.Cost, int64, error) {
		sim, err := disq.NewSimPlatform(u, disq.SimOptions{Seed: reuseSeed})
		if err != nil {
			return 0, 0, err
		}
		tier, err := serve.New(serve.Config{
			Domain:      "recipes",
			Objects:     objs,
			Backends:    []serve.Backend{{Name: "reuse-bench", Platform: sim}},
			DefaultBObj: crowd.Cents(4),
			DefaultBPrc: crowd.Dollars(6),
			AnswerCache: 4096,
		})
		if err != nil {
			return 0, 0, err
		}
		ctx := context.Background()
		if _, err := tier.Execute(ctx, serve.Request{
			Statement: statement, ObjectIDs: []int{warmID},
		}); err != nil {
			return 0, 0, err
		}
		var spent crowd.Cost
		var reused int64
		for s := 0; s < nSessions; s++ {
			ids := make([]int, window)
			for j := range ids {
				ids[j] = objs[(s*step+j)%nObjects].ID
			}
			res, err := tier.Execute(ctx, serve.Request{
				Statement: statement, ObjectIDs: ids, ReuseAnswers: reuse,
			})
			if err != nil {
				return 0, 0, err
			}
			if !res.CacheHit {
				return 0, 0, fmt.Errorf("reuse bench: session %d missed the warmed plan", s)
			}
			spent += res.OnlineSpent
			reused += res.AnswersReused
		}
		return spent, reused, nil
	}

	offA, _, err := runArm(false)
	if err != nil {
		return err
	}
	onA, reusedA, err := runArm(true)
	if err != nil {
		return err
	}
	onB, reusedB, err := runArm(true)
	if err != nil {
		return err
	}
	offB, _, err := runArm(false)
	if err != nil {
		return err
	}
	if offA != offB || onA != onB || reusedA != reusedB {
		return fmt.Errorf("reuse bench: nondeterministic arms (off %d vs %d, on %d vs %d, reused %d vs %d)",
			offA, offB, onA, onB, reusedA, reusedB)
	}
	if onA <= 0 {
		return fmt.Errorf("reuse bench: reuse arm spent nothing")
	}
	if reusedA <= 0 {
		return fmt.Errorf("reuse bench: reuse arm reused no answers")
	}
	report.AnswerReuseGain = float64(offA) / float64(onA)
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "online-spend-reuse-off-mills", NsPerOp: int64(offA)},
		benchEntry{Name: "online-spend-reuse-on-mills", NsPerOp: int64(onA)},
	)
	return nil
}
