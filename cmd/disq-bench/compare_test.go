package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func compareFixtures() (*benchReport, *benchReport) {
	old := &benchReport{SweepSpeedup: 0.97, Benchmarks: []benchEntry{
		{Name: "sweep", Parallelism: 1, NsPerOp: 1000, Err: 0.20},
		{Name: "online", NsPerOp: 2000, Err: 0.20},
		{Name: "retired", NsPerOp: 10},
	}}
	new := &benchReport{SweepSpeedup: 1.01, Benchmarks: []benchEntry{
		{Name: "sweep", Parallelism: 1, NsPerOp: 1050, Err: 0.20}, // +5%: noise
		{Name: "online", NsPerOp: 2500, Err: 0.21},                // +25%: regression
		{Name: "fresh", NsPerOp: 5},
	}}
	return old, new
}

func TestCompareFlagsRegression(t *testing.T) {
	old, new := compareFixtures()
	var buf strings.Builder
	if !compareReports(&buf, old, new, 0.10) {
		t.Fatal("the 25% regression was not flagged at a 10% threshold")
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "online/p0", "fresh/p0", "retired/p0", "new", "gone", "sweep speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("want exactly one flagged regression:\n%s", out)
	}
}

func TestCompareLooseThresholdPasses(t *testing.T) {
	old, new := compareFixtures()
	var buf strings.Builder
	if compareReports(&buf, old, new, 1.0) {
		t.Fatalf("a 25%% delta must pass a 100%% (2x) threshold:\n%s", buf.String())
	}
}

func TestRunCompareFiles(t *testing.T) {
	old, new := compareFixtures()
	dir := t.TempDir()
	write := func(name string, r *benchReport) string {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath, newPath := write("old.json", old), write("new.json", new)
	regressed, err := runCompare(oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("runCompare missed the regression")
	}
	if _, err := runCompare(oldPath, filepath.Join(dir, "missing.json"), 0.10); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCompareCollectBatchGainGate(t *testing.T) {
	old := &benchReport{CollectBatchGain: 2.0}
	// Below the 1.3 absolute contract: regression even vs. an empty old.
	var buf strings.Builder
	if !compareReports(&buf, &benchReport{}, &benchReport{CollectBatchGain: 1.1}, 0.10) {
		t.Fatalf("collect batch gain 1.1x must fail the ≥1.3 contract:\n%s", buf.String())
	}
	// Above the contract but sliding more than the threshold vs. old.
	buf.Reset()
	if !compareReports(&buf, old, &benchReport{CollectBatchGain: 1.5}, 0.10) {
		t.Fatalf("a 25%% slide of the collect batch gain must be flagged:\n%s", buf.String())
	}
	// Healthy: above contract, within threshold of old.
	buf.Reset()
	if compareReports(&buf, old, &benchReport{CollectBatchGain: 1.9}, 0.10) {
		t.Fatalf("healthy collect batch gain flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "collect batch gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Reports predating the measurement are tolerated silently.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{}, 0.10) {
		t.Fatal("empty reports must not regress")
	}
	if strings.Contains(buf.String(), "collect batch gain") {
		t.Fatalf("absent gain must not be reported:\n%s", buf.String())
	}
}

func TestCompareServeGates(t *testing.T) {
	// qps: higher is better, so only a slide below old fails.
	var buf strings.Builder
	if !compareReports(&buf, &benchReport{QPS: 100}, &benchReport{QPS: 80}, 0.10) {
		t.Fatalf("a 20%% qps drop must be flagged at a 10%% threshold:\n%s", buf.String())
	}
	buf.Reset()
	if compareReports(&buf, &benchReport{QPS: 100}, &benchReport{QPS: 95}, 0.10) {
		t.Fatalf("a 5%% qps drop must pass a 10%% threshold:\n%s", buf.String())
	}
	buf.Reset()
	if compareReports(&buf, &benchReport{QPS: 100}, &benchReport{QPS: 200}, 0.10) {
		t.Fatalf("a qps improvement flagged as regression:\n%s", buf.String())
	}
	// A new report without the measurement never gates (and vice versa).
	buf.Reset()
	if compareReports(&buf, &benchReport{QPS: 100}, &benchReport{}, 0.10) {
		t.Fatalf("absent qps must not regress:\n%s", buf.String())
	}

	// plan_cache_gain: absolute ≥3 contract plus the relative slide.
	buf.Reset()
	if !compareReports(&buf, &benchReport{}, &benchReport{PlanCacheGain: 2.5}, 0.10) {
		t.Fatalf("plan cache gain 2.5x must fail the ≥3 contract:\n%s", buf.String())
	}
	buf.Reset()
	if !compareReports(&buf, &benchReport{PlanCacheGain: 8}, &benchReport{PlanCacheGain: 5}, 0.10) {
		t.Fatalf("a 37%% slide of the plan cache gain must be flagged:\n%s", buf.String())
	}
	buf.Reset()
	if compareReports(&buf, &benchReport{PlanCacheGain: 8}, &benchReport{PlanCacheGain: 7.5}, 0.10) {
		t.Fatalf("healthy plan cache gain flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "plan cache gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Latency is informational only.
	buf.Reset()
	if compareReports(&buf, &benchReport{QPS: 100, P50Ns: 1000, P99Ns: 5000},
		&benchReport{QPS: 100, P50Ns: 9000, P99Ns: 90000}, 0.10) {
		t.Fatalf("latency shifts must not gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "serve latency") {
		t.Fatalf("latency not reported:\n%s", buf.String())
	}
}

func TestCompareToleratesMissingNCPUSpeedup(t *testing.T) {
	// A single-CPU host omits sweep_speedup_ncpu; comparing against an old
	// multi-core report must note the absence, not regress.
	old := &benchReport{SweepSpeedupNCPU: 3.5, Benchmarks: []benchEntry{
		{Name: "sweep-fig1a-ncpu", Parallelism: 1, NsPerOp: 1000},
	}}
	var buf strings.Builder
	if compareReports(&buf, old, &benchReport{}, 0.10) {
		t.Fatalf("missing NumCPU measurement must not be a regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "skipped in new report") {
		t.Fatalf("absence of the NumCPU measurement not noted:\n%s", buf.String())
	}
}

func TestCompareShardScalingGainGate(t *testing.T) {
	var buf strings.Builder
	// Absolute contract: below 1.5x fails even with no old measurement.
	if !compareReports(&buf, &benchReport{}, &benchReport{ShardScalingGain: 1.2}, 0.10) {
		t.Fatal("shard scaling gain 1.2x passed the >=1.5x contract")
	}
	// Above the absolute bar with no old measurement: passes.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{ShardScalingGain: 2.5}, 0.10) {
		t.Fatal("shard scaling gain 2.5x failed without an old report")
	}
	if !strings.Contains(buf.String(), "shard scaling gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Relative slide beyond the threshold fails even above the bar.
	if !compareReports(&buf, &benchReport{ShardScalingGain: 3.0}, &benchReport{ShardScalingGain: 2.0}, 0.10) {
		t.Fatal("33% shard gain slide passed")
	}
	// A slide within the threshold passes.
	if compareReports(&buf, &benchReport{ShardScalingGain: 3.0}, &benchReport{ShardScalingGain: 2.9}, 0.10) {
		t.Fatal("3% shard gain slide failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{ShardScalingGain: 3.0}, &benchReport{}, 0.10) {
		t.Fatal("missing shard measurement tripped the gate")
	}
}

func TestCompareShardQuestionsPerBackendGate(t *testing.T) {
	var buf strings.Builder
	// Lower is better: above the 0.5 absolute ceiling fails even with no
	// old measurement (a backend answering >half the questions means the
	// scatter is not spreading work).
	if !compareReports(&buf, &benchReport{}, &benchReport{ShardQuestionsPerBackend: 0.6}, 0.10) {
		t.Fatal("0.6 questions/backend passed the <=0.5 contract")
	}
	// Under the ceiling with no old measurement: passes and is reported.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{ShardQuestionsPerBackend: 0.25}, 0.10) {
		t.Fatal("0.25 questions/backend failed without an old report")
	}
	if !strings.Contains(buf.String(), "shard questions/backend") {
		t.Fatalf("ratio not reported:\n%s", buf.String())
	}
	// Growth beyond the threshold fails even under the ceiling.
	if !compareReports(&buf, &benchReport{ShardQuestionsPerBackend: 0.25}, &benchReport{ShardQuestionsPerBackend: 0.4}, 0.10) {
		t.Fatal("60% questions/backend growth passed")
	}
	// Growth within the threshold passes.
	if compareReports(&buf, &benchReport{ShardQuestionsPerBackend: 0.25}, &benchReport{ShardQuestionsPerBackend: 0.26}, 0.10) {
		t.Fatal("4% questions/backend growth failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{ShardQuestionsPerBackend: 0.25}, &benchReport{}, 0.10) {
		t.Fatal("missing questions/backend measurement tripped the gate")
	}
}

func TestComparePredicateSkipGainGate(t *testing.T) {
	var buf strings.Builder
	// Absolute contract: below 2x fails even with no old measurement.
	if !compareReports(&buf, &benchReport{}, &benchReport{PredicateSkipGain: 1.7}, 0.10) {
		t.Fatal("predicate skip gain 1.7x passed the >=2x contract")
	}
	// Above the absolute bar with no old measurement: passes and reports.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{PredicateSkipGain: 2.5}, 0.10) {
		t.Fatal("predicate skip gain 2.5x failed without an old report")
	}
	if !strings.Contains(buf.String(), "predicate skip gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Relative slide beyond the threshold fails even above the bar.
	if !compareReports(&buf, &benchReport{PredicateSkipGain: 3.0}, &benchReport{PredicateSkipGain: 2.2}, 0.10) {
		t.Fatal("27% predicate skip slide passed")
	}
	// A slide within the threshold passes.
	if compareReports(&buf, &benchReport{PredicateSkipGain: 2.6}, &benchReport{PredicateSkipGain: 2.5}, 0.10) {
		t.Fatal("4% predicate skip slide failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{PredicateSkipGain: 2.6}, &benchReport{}, 0.10) {
		t.Fatal("missing predicate skip measurement tripped the gate")
	}
}

func TestCompareTopKPruneGainGate(t *testing.T) {
	var buf strings.Builder
	// Absolute contract: below 1.1x fails even with no old measurement.
	if !compareReports(&buf, &benchReport{}, &benchReport{TopKPruneGain: 1.05}, 0.10) {
		t.Fatal("topk prune gain 1.05x passed the >=1.1x contract")
	}
	// Above the absolute bar with no old measurement: passes and reports.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{TopKPruneGain: 1.3}, 0.10) {
		t.Fatal("topk prune gain 1.3x failed without an old report")
	}
	if !strings.Contains(buf.String(), "topk prune gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Relative slide beyond the threshold fails even above the bar.
	if !compareReports(&buf, &benchReport{TopKPruneGain: 1.6}, &benchReport{TopKPruneGain: 1.3}, 0.10) {
		t.Fatal("19% topk prune slide passed")
	}
	// A slide within the threshold passes.
	if compareReports(&buf, &benchReport{TopKPruneGain: 1.32}, &benchReport{TopKPruneGain: 1.3}, 0.10) {
		t.Fatal("2% topk prune slide failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{TopKPruneGain: 1.3}, &benchReport{}, 0.10) {
		t.Fatal("missing topk prune measurement tripped the gate")
	}
}

func TestCompareAdaptiveSpendGainGate(t *testing.T) {
	var buf strings.Builder
	// Absolute contract: below 1.2x fails even with no old measurement.
	if !compareReports(&buf, &benchReport{}, &benchReport{AdaptiveSpendGain: 1.1}, 0.10) {
		t.Fatal("adaptive spend gain 1.1x passed the >=1.2x contract")
	}
	// Above the absolute bar with no old measurement: passes.
	if compareReports(&buf, &benchReport{}, &benchReport{AdaptiveSpendGain: 1.4}, 0.10) {
		t.Fatal("adaptive spend gain 1.4x failed without an old report")
	}
	// Relative slide beyond the threshold fails even above the bar.
	if !compareReports(&buf, &benchReport{AdaptiveSpendGain: 1.8}, &benchReport{AdaptiveSpendGain: 1.3}, 0.10) {
		t.Fatal("28% adaptive gain slide passed")
	}
	// A slide within the threshold passes.
	if compareReports(&buf, &benchReport{AdaptiveSpendGain: 1.5}, &benchReport{AdaptiveSpendGain: 1.45}, 0.10) {
		t.Fatal("3% adaptive gain slide failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{AdaptiveSpendGain: 1.5}, &benchReport{}, 0.10) {
		t.Fatal("missing adaptive measurement tripped the gate")
	}
}

func TestCompareAnswerReuseGainGate(t *testing.T) {
	var buf strings.Builder
	// Absolute contract: below 1.5x fails even with no old measurement.
	if !compareReports(&buf, &benchReport{}, &benchReport{AnswerReuseGain: 1.4}, 0.10) {
		t.Fatal("answer reuse gain 1.4x passed the >=1.5x contract")
	}
	// Above the absolute bar with no old measurement: passes and reports.
	buf.Reset()
	if compareReports(&buf, &benchReport{}, &benchReport{AnswerReuseGain: 2.0}, 0.10) {
		t.Fatal("answer reuse gain 2.0x failed without an old report")
	}
	if !strings.Contains(buf.String(), "answer reuse gain") {
		t.Fatalf("gain not reported:\n%s", buf.String())
	}
	// Relative slide beyond the threshold fails even above the bar.
	if !compareReports(&buf, &benchReport{AnswerReuseGain: 2.0}, &benchReport{AnswerReuseGain: 1.6}, 0.10) {
		t.Fatal("20% answer reuse slide passed")
	}
	// A slide within the threshold passes.
	if compareReports(&buf, &benchReport{AnswerReuseGain: 2.0}, &benchReport{AnswerReuseGain: 1.9}, 0.10) {
		t.Fatal("5% answer reuse slide failed")
	}
	// A report without the measurement does not trip the gate.
	if compareReports(&buf, &benchReport{AnswerReuseGain: 2.0}, &benchReport{}, 0.10) {
		t.Fatal("missing answer reuse measurement tripped the gate")
	}
}
