package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func compareFixtures() (*benchReport, *benchReport) {
	old := &benchReport{SweepSpeedup: 0.97, Benchmarks: []benchEntry{
		{Name: "sweep", Parallelism: 1, NsPerOp: 1000, Err: 0.20},
		{Name: "online", NsPerOp: 2000, Err: 0.20},
		{Name: "retired", NsPerOp: 10},
	}}
	new := &benchReport{SweepSpeedup: 1.01, Benchmarks: []benchEntry{
		{Name: "sweep", Parallelism: 1, NsPerOp: 1050, Err: 0.20}, // +5%: noise
		{Name: "online", NsPerOp: 2500, Err: 0.21},                // +25%: regression
		{Name: "fresh", NsPerOp: 5},
	}}
	return old, new
}

func TestCompareFlagsRegression(t *testing.T) {
	old, new := compareFixtures()
	var buf strings.Builder
	if !compareReports(&buf, old, new, 0.10) {
		t.Fatal("the 25% regression was not flagged at a 10% threshold")
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "online/p0", "fresh/p0", "retired/p0", "new", "gone", "sweep speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("want exactly one flagged regression:\n%s", out)
	}
}

func TestCompareLooseThresholdPasses(t *testing.T) {
	old, new := compareFixtures()
	var buf strings.Builder
	if compareReports(&buf, old, new, 1.0) {
		t.Fatalf("a 25%% delta must pass a 100%% (2x) threshold:\n%s", buf.String())
	}
}

func TestRunCompareFiles(t *testing.T) {
	old, new := compareFixtures()
	dir := t.TempDir()
	write := func(name string, r *benchReport) string {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath, newPath := write("old.json", old), write("new.json", new)
	regressed, err := runCompare(oldPath, newPath, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("runCompare missed the regression")
	}
	if _, err := runCompare(oldPath, filepath.Join(dir, "missing.json"), 0.10); err == nil {
		t.Fatal("missing file must error")
	}
}
