package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/domain"
	"repro/internal/query"
)

// runLazyBench measures the lazy evaluator's two spend headlines. Both
// arms compare the eager engine against the lazy engine over the same
// plan and bit-identical simulated answer streams, so the ratios are
// deterministic money — no ABBA dance, one run each. The environment is
// pinned (fixed simulator seed and object draw, independent of -seed):
// the gains are properties of the evaluator on a known workload, and a
// drifting seed would turn the compare gates into coin flips.
//
//   - predicate_skip_gain: a selective conjunctive filter under the
//     confidence config (MinAnswers 2, DropTol 0.3): predicates decided
//     on a few answers of the highest-impact terms reject most objects
//     before the rest of their budget is spent. Contract ≥2.
//   - topk_prune_gain: a pure ORDER BY ... LIMIT statement under the
//     same confidence config: candidates whose sort-key interval sits
//     provably below the kept top-k threshold are dropped before their
//     SELECT questions. Contract ≥1.1.
//
// Both arms run the approximate evaluator — the exact (Z=∞) mode's
// bit-equality pins live in internal/query's tests, but on this plan's
// dense least-squares regressions exact evaluation reads the full
// support and saves nothing; the spend headline is the confidence mode.
func runLazyBench(report *benchReport) error {
	const (
		lazySeed = 99
		objSeed  = 17
		nObjects = 48
	)
	newSim := func() (*crowd.SimPlatform, []*domain.Object, error) {
		sim, err := crowd.NewSim(domain.Recipes(), crowd.SimOptions{Seed: lazySeed})
		if err != nil {
			return nil, nil, err
		}
		return sim, sim.Universe().NewObjects(rand.New(rand.NewSource(objSeed)), nObjects), nil
	}
	buildPlan := func(st *query.Statement) (*core.Plan, error) {
		sim, _, err := newSim()
		if err != nil {
			return nil, err
		}
		return core.Preprocess(sim, st.Query(), crowd.Cents(4), crowd.Dollars(30), core.Options{})
	}
	runArm := func(st *query.Statement, plan *core.Plan, lcfg *query.LazyConfig) (crowd.Cost, error) {
		sim, objs, err := newSim()
		if err != nil {
			return 0, err
		}
		eng, err := query.NewEngine(sim, plan, st)
		if err != nil {
			return 0, err
		}
		if lcfg != nil {
			eng.SetLazy(lcfg)
		}
		if _, err := eng.Execute(st, objs); err != nil {
			return 0, err
		}
		return sim.Ledger().Spent(), nil
	}
	measure := func(stmt string, lcfg *query.LazyConfig) (eager, lazy crowd.Cost, err error) {
		st, err := query.Parse(stmt)
		if err != nil {
			return 0, 0, err
		}
		plan, err := buildPlan(st)
		if err != nil {
			return 0, 0, err
		}
		if eager, err = runArm(st, plan, nil); err != nil {
			return 0, 0, err
		}
		if lazy, err = runArm(st, plan, lcfg); err != nil {
			return 0, 0, err
		}
		if lazy <= 0 {
			return 0, 0, fmt.Errorf("lazy bench: %q spent nothing", stmt)
		}
		return eager, lazy, nil
	}

	// The headline tuning: predicates settle on two agreeing answers
	// (MinAnswers 2), and the impact truncation (DropTol 0.3) keeps the
	// dense regressions from reading the full support per predicate —
	// each lazy predicate pays only for the terms that can change its
	// outcome.
	lcfg := &query.LazyConfig{
		ShortCircuit: true, Reorder: true, Z: 1.96,
		MinAnswers: 2, Rounds: 4, TopKPrune: true, DropTol: 0.3,
	}

	// Selective filter: short-circuit rejection plus early decisions.
	eagerSkip, lazySkip, err := measure("SELECT Protein WHERE Dessert > 0.5 AND Calories < 250", lcfg)
	if err != nil {
		return err
	}
	report.PredicateSkipGain = float64(eagerSkip) / float64(lazySkip)

	// Pure top-k: confidence pruning of out-of-top-k candidates.
	eagerTopK, lazyTopK, err := measure("SELECT Calories ORDER BY Protein DESC LIMIT 5", lcfg)
	if err != nil {
		return err
	}
	report.TopKPruneGain = float64(eagerTopK) / float64(lazyTopK)

	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "online-spend-eager-filter-mills", NsPerOp: int64(eagerSkip)},
		benchEntry{Name: "online-spend-lazy-filter-mills", NsPerOp: int64(lazySkip)},
		benchEntry{Name: "online-spend-eager-topk-mills", NsPerOp: int64(eagerTopK)},
		benchEntry{Name: "online-spend-lazy-topk-mills", NsPerOp: int64(lazyTopK)},
	)
	return nil
}
