package main

import "testing"

// TestRunReuseBenchContract runs the answer-reuse spend arms for real
// (pinned environment, deterministic money) and checks the headline
// ratio clears its compare-gate contract — so a regression fails in go
// test, not just in the CI bench diff. The workload overlaps every
// object's evaluation exactly twice, so the gain is 2.0 by construction
// and anything else means the cache stopped serving (or overserved).
func TestRunReuseBenchContract(t *testing.T) {
	var r benchReport
	if err := runReuseBench(&r); err != nil {
		t.Fatal(err)
	}
	if r.AnswerReuseGain < 1.5 {
		t.Fatalf("answer_reuse_gain = %.3f, contract >= 1.5", r.AnswerReuseGain)
	}
	if r.AnswerReuseGain < 1.99 || r.AnswerReuseGain > 2.01 {
		t.Fatalf("answer_reuse_gain = %.3f, constructed value is 2.0", r.AnswerReuseGain)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("reuse arms recorded %d bench entries, want 2", len(r.Benchmarks))
	}
}
