package main

import "repro/internal/experiment"

// figureRef adapts the experiment registry to the CLI.
type figureRef struct {
	id    string
	title string
	run   func(reps, evalN int, seed int64) (string, error)
}

func lookup(id string) (figureRef, bool) {
	f, ok := experiment.Lookup(id)
	if !ok {
		return figureRef{}, false
	}
	return figureRef{
		id:    f.ID,
		title: f.Title,
		run: func(reps, evalN int, seed int64) (string, error) {
			return f.Run(experiment.RunOptions{Reps: reps, EvalObjects: evalN, Seed: seed})
		},
	}, true
}

func allIDs() []string { return experiment.IDs() }

func experimentList() string { return experiment.Describe() }
