package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	disq "repro"
	"repro/internal/adaptive"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/experiment"
	"repro/internal/serve"
)

// benchEntry is one machine-readable benchmark result. NsPerOp mirrors
// `go test -bench` and Err carries the quality metric (the DisQ mean
// weighted error) where the benchmark has one, so speed regressions and
// quality regressions show up in the same diff.
type benchEntry struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"` // 0 = as wide as GOMAXPROCS allows
	NsPerOp     int64   `json:"ns_per_op"`
	Err         float64 `json:"err,omitempty"`
	// Phases carries the per-phase preprocessing profile (wall time,
	// questions, cost) on the preprocess benchmark.
	Phases []core.PhaseStats `json:"phases,omitempty"`
}

// benchReport is the top-level JSON document written by -bench.
type benchReport struct {
	GoMaxProcs  int `json:"go_max_procs"`
	Reps        int `json:"reps"`
	EvalObjects int `json:"eval_objects"`
	// SweepSpeedup is sequential / parallel wall-clock of the figure-level
	// sweep benchmark, measured pinned to one processor so the number is
	// comparable across machines (and against BENCH_baseline.json). With
	// only one processor the parallel path falls back to the serial loop,
	// so this must sit at ~1.0 — below 1.0 means the harness is paying
	// scheduling overhead for no gain.
	SweepSpeedup float64 `json:"sweep_speedup"`
	// SweepSpeedupNCPU repeats the measurement at GOMAXPROCS=NumCPU — the
	// real parallel-throughput figure, which should approach
	// min(NumCPU, #budget points × reps) on multi-core hardware. On a
	// single-CPU host the measurement is meaningless (it can only re-time
	// the serial fallback), so it is skipped and the field omitted.
	SweepSpeedupNCPU float64 `json:"sweep_speedup_ncpu,omitempty"`
	// SweepSharedGain is rebuild-per-point / shared-snapshot wall-clock of
	// the sequential pinned sweep: how much the copy-on-write answer-stream
	// layer (RunSweep forking one per-repetition platform per budget point)
	// saves over rebuilding the simulation at every point. The contract is
	// ≥1.5 — below that the sharing layer has stopped paying for itself.
	SweepSharedGain float64 `json:"sweep_shared_gain"`
	// CollectBatchGain is unbatched / batched collect-phase wall-clock of a
	// full preprocessing run against a local HTTP crowd server: what the
	// multi-object value batches (one round trip per attribute × stream
	// instead of one per example) save on a real transport. The contract is
	// ≥1.3 — below that the batched wire path has stopped paying for itself.
	CollectBatchGain float64 `json:"collect_batch_gain,omitempty"`
	// QPS/P50Ns/P99Ns are the serving-tier headline: closed-loop
	// throughput and tail latency of a two-backend serve.Tier driven by
	// the shared load harness (warm plan cache, mixed statements).
	QPS   float64 `json:"qps,omitempty"`
	P50Ns int64   `json:"p50_ns,omitempty"`
	P99Ns int64   `json:"p99_ns,omitempty"`
	// PlanCacheGain is cold / warm median query latency on the serving
	// tier (a cache-missing plan key vs a pre-warmed one, ABBA-measured):
	// what the plan cache saves a repeated query. The contract is ≥3 —
	// below that the cache has stopped paying for itself.
	PlanCacheGain float64 `json:"plan_cache_gain,omitempty"`
	// AdaptiveSpendGain is fixed / adaptive online crowd spend of the
	// same plan evaluated over the same answer streams (forks of one
	// snapshot), with the adaptive evaluator in its stopping-only
	// headline tuning. This is money, not wall-clock, and the comparison
	// is deterministic. The contract is ≥1.2 — equal-quality estimates at
	// ≥20% lower online spend.
	AdaptiveSpendGain float64 `json:"adaptive_spend_gain,omitempty"`
	// AdaptiveErr / FixedErr carry the two modes' mean weighted errors so
	// the spend gain can't quietly be bought with accuracy.
	AdaptiveErr float64 `json:"adaptive_err,omitempty"`
	FixedErr    float64 `json:"fixed_err,omitempty"`
	// ShardScalingGain is S=1 / S=4 wall-clock of the same query mix on a
	// sharded serving tier whose replica backends model per-question
	// crowd latency: what scatter-gather partition parallelism hides of
	// the crowd round trips. Latency-bound, so it holds on a single-CPU
	// host. The contract is ≥1.5 — below that the scatter has stopped
	// paying for itself.
	ShardScalingGain float64 `json:"shard_scaling_gain,omitempty"`
	// PredicateSkipGain is eager / lazy online crowd spend of the same
	// selective conjunctive filter over bit-identical answer streams: what
	// short-circuit evaluation with cheapest-rejection-first ordering and
	// confidence-based early predicate decisions saves. Deterministic
	// money, not wall-clock. The contract is ≥2 — the lazy evaluator must
	// at least halve the online bill on a selective filter.
	PredicateSkipGain float64 `json:"predicate_skip_gain,omitempty"`
	// TopKPruneGain is eager / lazy online spend of a pure ORDER BY ...
	// LIMIT statement under the exact (Z=∞) top-k prune, whose rows are
	// bit-equal to the eager engine's. The contract is ≥1.1.
	TopKPruneGain float64 `json:"topk_prune_gain,omitempty"`
	// AnswerReuseGain is reuse-off / reuse-on online crowd spend of the
	// same overlapping-window session workload on a serving tier with the
	// shared answer cache: what cross-session answer reuse saves when
	// sessions' evaluation sets overlap. Rows are bit-equal either way —
	// the cache serves full-budget means the simulator would reproduce
	// bit-identically — so the gain is pure money. The workload overlaps
	// every object twice, making the constructed gain 2.0; the contract
	// is ≥1.5.
	AnswerReuseGain float64 `json:"answer_reuse_gain,omitempty"`
	// ShardQuestionsPerBackend is the sharded arm's mean per-backend
	// online question volume divided by the unsharded arm's (which lands
	// on one backend): ~1/S when the partitioner spreads evenly. Lower is
	// better; the contract is ≤0.5 at S=4.
	ShardQuestionsPerBackend float64      `json:"shard_questions_per_backend,omitempty"`
	NumCPU                   int          `json:"num_cpu"`
	Benchmarks               []benchEntry `json:"benchmarks"`
}

// runBench executes the benchmark suite and writes the JSON report to
// jsonPath ("" = stdout). reps/evalN of 0 use the reduced benchmark
// defaults (2 reps, 30 objects), not the paper-scale defaults.
func runBench(jsonPath string, reps, evalN int, seed int64) error {
	if reps == 0 {
		reps = 2
	}
	if evalN == 0 {
		evalN = 30
	}
	report := benchReport{
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Reps:        reps,
		EvalObjects: evalN,
	}

	// Figure-level benchmark: the fig1a sweep (error vs B_prc, pictures,
	// Bmi) at Parallelism=1 and at full width. Same seeds, so the err
	// metric must agree within float noise; the wall-clock ratio is the
	// headline parallel-throughput number.
	sweepSpec := experiment.Spec{
		Name:     "bench-fig1a",
		Platform: experiment.PlatformConfig{Domain: "pictures"},
		Targets:  []string{"Bmi"},
		BObj:     crowd.Cents(4), BPrc: crowd.Dollars(30),
		Algorithms: []baselines.Algorithm{
			baselines.NaiveAverage{}, baselines.SimpleDisQ(), baselines.DisQ{},
		},
		Reps: reps, EvalObjects: evalN, BaseSeed: seed,
	}
	grid := []crowd.Cost{crowd.Dollars(10), crowd.Dollars(15), crowd.Dollars(20), crowd.Dollars(25)}
	// Two sweep implementations share the measurement harness: the
	// rebuild-per-point path (a fresh simulation per budget point, the
	// pre-snapshot behavior and the apples-to-apples number against older
	// reports) and the shared path (every point forks one per-repetition
	// snapshot, the RunSweep default).
	type sweepFn func(experiment.Spec, experiment.SweepVariable, []crowd.Cost) (*experiment.Sweep, error)
	runSweepBench := func(parallelism int, run sweepFn) (int64, float64, error) {
		s := sweepSpec
		s.Parallelism = parallelism
		// Start every measurement from a collected heap: the sweep
		// allocates heavily, and without the barrier whichever mode runs
		// later pays the previous mode's GC debt (the seed baseline's
		// sweep_speedup < 1 was partly this ordering bias).
		runtime.GC()
		start := time.Now()
		sw, err := run(s, experiment.VaryBPrc, grid)
		if err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start).Nanoseconds()
		var sum float64
		var n int
		for _, pt := range sw.Points {
			for _, r := range pt.Results {
				if r.Algorithm == "DisQ" && len(r.PerRep) > 0 {
					sum += r.Mean
					n++
				}
			}
		}
		if n == 0 {
			return elapsed, 0, nil
		}
		return elapsed, sum / float64(n), nil
	}
	// The sweep is timed pinned to one processor (the apples-to-apples
	// number against older reports, where the serial fallback keeps the
	// speedup ratio at ~1.0) and at full width (the genuine
	// parallel-throughput figure). Both restore the scheduler and the
	// shared worker pool before the per-phase benchmarks below.
	prevProcs := runtime.GOMAXPROCS(1)
	prevPool := core.SetPoolParallelism(1)
	restore := func() {
		runtime.GOMAXPROCS(prevProcs)
		core.SetPoolParallelism(prevPool)
	}
	// One discarded warm-up sweep absorbs first-run effects (heap growth,
	// lazy initialization) that would otherwise bias the first mode.
	if _, _, err := runSweepBench(1, experiment.RunSweepRebuild); err != nil {
		restore()
		return err
	}
	// Each mode is measured twice in ABBA order and the minimum kept:
	// counterbalancing cancels the slow monotonic drift a shared box
	// shows between otherwise identical runs, which is what pushed the
	// seed baseline's one-slot speedup below 1.0. The shared path rides
	// inside the same palindrome so drift cancels for the gain ratio too.
	seqA, seqErr, err := runSweepBench(1, experiment.RunSweepRebuild)
	if err != nil {
		restore()
		return err
	}
	shSeqA, shSeqErr, err := runSweepBench(1, experiment.RunSweep)
	if err != nil {
		restore()
		return err
	}
	parA, parErr, err := runSweepBench(0, experiment.RunSweepRebuild)
	if err != nil {
		restore()
		return err
	}
	shParA, shParErr, err := runSweepBench(0, experiment.RunSweep)
	if err != nil {
		restore()
		return err
	}
	shParB, _, err := runSweepBench(0, experiment.RunSweep)
	if err != nil {
		restore()
		return err
	}
	parB, _, err := runSweepBench(0, experiment.RunSweepRebuild)
	if err != nil {
		restore()
		return err
	}
	shSeqB, _, err := runSweepBench(1, experiment.RunSweep)
	if err != nil {
		restore()
		return err
	}
	seqB, _, err := runSweepBench(1, experiment.RunSweepRebuild)
	if err != nil {
		restore()
		return err
	}
	seqNs, parNs := min(seqA, seqB), min(parA, parB)
	shSeqNs, shParNs := min(shSeqA, shSeqB), min(shParA, shParB)
	// The GOMAXPROCS=NumCPU re-measurement only means something when there
	// is more than one CPU to widen onto; on a single-CPU host it would
	// just re-time the serial fallback twice, so it is skipped entirely.
	var seqNsN, parNsN int64
	if runtime.NumCPU() > 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		core.SetPoolParallelism(runtime.NumCPU())
		if seqNsN, _, err = runSweepBench(1, experiment.RunSweepRebuild); err != nil {
			restore()
			return err
		}
		parNsN, _, err = runSweepBench(0, experiment.RunSweepRebuild)
	}
	restore()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "sweep-fig1a", Parallelism: 1, NsPerOp: seqNs, Err: seqErr},
		benchEntry{Name: "sweep-fig1a", Parallelism: 0, NsPerOp: parNs, Err: parErr},
		benchEntry{Name: "sweep-fig1a-shared", Parallelism: 1, NsPerOp: shSeqNs, Err: shSeqErr},
		benchEntry{Name: "sweep-fig1a-shared", Parallelism: 0, NsPerOp: shParNs, Err: shParErr},
	)
	if parNsN > 0 {
		report.Benchmarks = append(report.Benchmarks,
			benchEntry{Name: "sweep-fig1a-ncpu", Parallelism: 1, NsPerOp: seqNsN},
			benchEntry{Name: "sweep-fig1a-ncpu", Parallelism: 0, NsPerOp: parNsN},
		)
		report.SweepSpeedupNCPU = float64(seqNsN) / float64(parNsN)
	}
	if parNs > 0 {
		report.SweepSpeedup = float64(seqNs) / float64(parNs)
	}
	if shSeqNs > 0 {
		report.SweepSharedGain = float64(seqNs) / float64(shSeqNs)
	}
	report.NumCPU = runtime.NumCPU()

	// Headline quality point: DisQ alone on recipes/Protein at 4¢.
	pointSpec := experiment.Spec{
		Name:     "bench-protein-4c",
		Platform: experiment.PlatformConfig{Domain: "recipes"},
		Targets:  []string{"Protein"},
		BObj:     crowd.Cents(4), BPrc: crowd.Dollars(30),
		Algorithms: []baselines.Algorithm{baselines.DisQ{}},
		Reps:       reps, EvalObjects: evalN, BaseSeed: seed,
	}
	start := time.Now()
	res, err := experiment.Run(pointSpec)
	if err != nil {
		return err
	}
	var pointErr float64
	for _, r := range res {
		if len(r.PerRep) > 0 {
			pointErr = r.Mean
		}
	}
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "point-protein-4c", NsPerOp: time.Since(start).Nanoseconds(), Err: pointErr,
	})

	// Offline phase: one full preprocessing run (optimizer-dominated),
	// with the per-phase breakdown Preprocess emits on its trace. Like the
	// sweeps, the run is measured twice behind GC barriers and the faster
	// repetition kept, so the earlier benchmarks' heap churn doesn't leak
	// into the phase walls.
	runPreprocess := func() (*disq.SimPlatform, *core.Plan, []core.PhaseStats, int64, error) {
		runtime.GC()
		var phases []core.PhaseStats
		t0 := time.Now()
		sim, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: seed + 1})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		pl, err := disq.Preprocess(sim, disq.Query{Targets: []string{"Protein"}},
			disq.Cents(4), disq.Dollars(25), disq.Options{Trace: func(e disq.TraceEvent) {
				if e.Kind == disq.TracePhase {
					phases = append(phases, *e.Phase)
				}
			}})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return sim, pl, phases, time.Since(t0).Nanoseconds(), nil
	}
	p, plan, phases, preNs, err := runPreprocess()
	if err != nil {
		return err
	}
	if p2, plan2, phases2, preNs2, err := runPreprocess(); err != nil {
		return err
	} else if preNs2 < preNs {
		p, plan, phases, preNs = p2, plan2, phases2, preNs2
	}
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "preprocess-single-target", NsPerOp: preNs,
		Phases: phases,
	})

	// Collect batching over the wire: the same preprocessing run against a
	// local HTTP crowd server, once with the batched client (multi-object
	// value batches, one round trip per attribute × stream) and once with
	// the batching capability stripped (one round trip per value question).
	// The collect-phase wall-clock ratio is the batching headline; both
	// modes are measured twice in ABBA order with the minimum kept, like
	// the sweep above.
	remoteCollect := func(strip bool) (int64, error) {
		sim, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: seed + 3})
		if err != nil {
			return 0, err
		}
		srv := disq.NewCrowdServer(sim)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := disq.NewCrowdClient(ts.URL, ts.Client())
		var p disq.Platform = client
		if strip {
			p = disq.NewBatchedPlatform(client, -1)
		}
		var collect int64
		_, err = disq.Preprocess(p, disq.Query{Targets: []string{"Protein"}},
			disq.Cents(4), disq.Dollars(10), disq.Options{Trace: func(e disq.TraceEvent) {
				if e.Kind == disq.TracePhase && e.Phase.Phase == core.PhaseCollect {
					collect = int64(e.Phase.Wall)
				}
			}})
		if err != nil {
			return 0, err
		}
		return collect, nil
	}
	batA, err := remoteCollect(false)
	if err != nil {
		return err
	}
	serA, err := remoteCollect(true)
	if err != nil {
		return err
	}
	serB, err := remoteCollect(true)
	if err != nil {
		return err
	}
	batB, err := remoteCollect(false)
	if err != nil {
		return err
	}
	batNs, serNs := min(batA, batB), min(serA, serB)
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "collect-remote-batched", NsPerOp: batNs},
		benchEntry{Name: "collect-remote-serial", NsPerOp: serNs},
	)
	if batNs > 0 {
		report.CollectBatchGain = float64(serNs) / float64(batNs)
	}

	// Online phase: per-object estimation cost, amortized.
	objs := p.Universe().NewObjects(rand.New(rand.NewSource(seed+2)), 256)
	start = time.Now()
	for _, o := range objs {
		if _, err := plan.EstimateObject(p, o); err != nil {
			return err
		}
	}
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "online-evaluation", NsPerOp: time.Since(start).Nanoseconds() / int64(len(objs)),
	})

	// Raw simulator throughput: one value question, amortized.
	const questions = 4096
	start = time.Now()
	for i := 0; i < questions; i++ {
		if _, err := p.Value(objs[i%len(objs)], "Calories", 1+i/len(objs)/2); err != nil {
			return err
		}
	}
	report.Benchmarks = append(report.Benchmarks, benchEntry{
		Name: "sim-value-question", NsPerOp: time.Since(start).Nanoseconds() / questions,
	})

	// Adaptive online budgets: fixed vs adaptive evaluation of the same
	// plan over forked answer streams (experiment.AdaptiveGain). The gain
	// is a spend ratio, not a timing, so one deterministic run suffices —
	// no ABBA dance.
	adRes, err := experiment.AdaptiveGain(experiment.AdaptiveSpec{
		Name:     "bench-adaptive",
		Platform: experiment.PlatformConfig{Domain: "recipes"},
		Targets:  []string{"Protein"},
		BObj:     crowd.Cents(4), BPrc: crowd.Dollars(20),
		Config: stopOnlyAdaptive(),
		Reps:   reps, EvalObjects: evalN, BaseSeed: seed,
	})
	if err != nil {
		return err
	}
	report.AdaptiveSpendGain = adRes.SpendGain
	report.FixedErr = adRes.Fixed.Err
	report.AdaptiveErr = adRes.Adapt.Err
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "online-spend-fixed-mills", NsPerOp: int64(adRes.Fixed.Spend), Err: adRes.Fixed.Err},
		benchEntry{Name: "online-spend-adaptive-mills", NsPerOp: int64(adRes.Adapt.Spend), Err: adRes.Adapt.Err},
	)

	// Serving tier: a two-backend serve.Tier (shared universe, plan cache,
	// plan-affinity routing) under the closed-loop load harness, then the
	// plan-cache cold/warm split. RunLoad and MeasureCacheGain are the
	// same code paths cmd/disq-load drives over HTTP, so this headline and
	// the CI smoke measure the same machinery in-process.
	if err := runServeBench(&report, seed); err != nil {
		return err
	}

	// Horizontal sharding: S=4 vs S=1 scatter-gather on latency-modeled
	// replica backends.
	if err := runShardBench(&report, seed); err != nil {
		return err
	}

	// Lazy predicate-ordered evaluation: eager vs lazy online spend on a
	// selective filter and on a pure top-k statement.
	if err := runLazyBench(&report); err != nil {
		return err
	}

	// Answer reuse: the same overlapping-window workload with and without
	// the shared answer cache.
	if err := runReuseBench(&report); err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if jsonPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	ncpu := "skipped (single CPU)"
	if report.SweepSpeedupNCPU > 0 {
		ncpu = fmt.Sprintf("%.2fx at %d CPUs", report.SweepSpeedupNCPU, report.NumCPU)
	}
	fmt.Printf("benchmark report written to %s (sweep speedup %.2fx at 1 proc, %s, shared-snapshot gain %.2fx, collect batch gain %.2fx, serve %.0f qps, plan cache gain %.2fx, adaptive spend gain %.2fx, shard scaling gain %.2fx, predicate skip gain %.2fx, topk prune gain %.2fx, answer reuse gain %.2fx)\n",
		jsonPath, report.SweepSpeedup, ncpu, report.SweepSharedGain, report.CollectBatchGain,
		report.QPS, report.PlanCacheGain, report.AdaptiveSpendGain, report.ShardScalingGain,
		report.PredicateSkipGain, report.TopKPruneGain, report.AnswerReuseGain)
	return nil
}

// stopOnlyAdaptive is the adaptive evaluator's headline tuning for the
// spend-gain benchmark: sequential stopping with the savings kept (no
// reliability pilot, no reallocation), so the whole gain shows up as
// reduced spend.
func stopOnlyAdaptive() adaptive.Config {
	cfg := adaptive.Defaults()
	cfg.Weight, cfg.Reallocate = false, false
	return cfg
}

// runServeBench measures the serving tier's throughput/latency headline
// and the plan-cache gain, filling the report's QPS/P50Ns/P99Ns/
// PlanCacheGain fields.
func runServeBench(report *benchReport, seed int64) error {
	newTier := func() (*serve.Tier, error) {
		u := disq.Recipes()
		objs := u.NewObjects(rand.New(rand.NewSource(seed+6)), 64)
		cfg := serve.Config{
			Domain:      "recipes",
			Objects:     objs,
			DefaultBObj: crowd.Cents(4),
			DefaultBPrc: crowd.Dollars(6),
		}
		for i := 0; i < 2; i++ {
			sim, err := disq.NewSimPlatform(u, disq.SimOptions{Seed: seed + 4 + int64(i)})
			if err != nil {
				return nil, err
			}
			cfg.Backends = append(cfg.Backends, serve.Backend{
				Name: fmt.Sprintf("bench-%d", i), Platform: sim,
			})
		}
		return serve.New(cfg)
	}

	// Throughput: closed loop, mixed statements, warm after the first
	// arrival per shape.
	tier, err := newTier()
	if err != nil {
		return err
	}
	runtime.GC()
	load, err := serve.RunLoad(tier, serve.LoadConfig{
		Statements:  []string{"SELECT Protein", "SELECT Calories"},
		Concurrency: 4,
		Duration:    2 * time.Second,
		MaxObjects:  16,
	})
	if err != nil {
		return err
	}
	if load.Errors > 0 {
		return fmt.Errorf("serve bench: %d load errors", load.Errors)
	}
	report.QPS = load.QPS
	report.P50Ns = int64(load.P50)
	report.P99Ns = int64(load.P99)
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "serve-query-p50", NsPerOp: int64(load.P50)},
		benchEntry{Name: "serve-query-p99", NsPerOp: int64(load.P99)},
	)

	// Plan-cache gain on a fresh tier (the load run above already warmed
	// every key this tier has, which would starve the cold side of fresh
	// keys' first-touch allocation costs).
	tier, err = newTier()
	if err != nil {
		return err
	}
	runtime.GC()
	gain, err := serve.MeasureCacheGain(tier, serve.GainConfig{
		Statement:  "SELECT Protein",
		Probes:     4,
		MaxObjects: 16,
		BObj:       crowd.Cents(4),
		BPrc:       crowd.Dollars(6),
	})
	if err != nil {
		return err
	}
	report.PlanCacheGain = gain.Gain
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "serve-query-cold", NsPerOp: int64(gain.ColdP50)},
		benchEntry{Name: "serve-query-warm", NsPerOp: int64(gain.WarmP50)},
	)
	return nil
}

// runShardBench measures the scatter-gather headline: the same warm
// query mix at S=1 and S=4 on a four-replica tier whose backends charge a
// per-question latency (the crowd round trip a simulator otherwise hides)
// — so the gain comes from overlapping latency across shards, not from
// CPU parallelism, and the measurement holds on a single-core host. The
// arms run in ABBA order with the minimum kept, like every wall-clock
// ratio in this suite.
func runShardBench(report *benchReport, seed int64) error {
	const (
		nBackends   = 4
		nShards     = 4
		armQueries  = 3
		qLatency    = 500 * time.Microsecond
		evalObjects = 16
	)
	u := disq.Recipes()
	objs := u.NewObjects(rand.New(rand.NewSource(seed+7)), 64)
	cfg := serve.Config{
		Domain:      "recipes",
		Objects:     objs,
		Shards:      nShards,
		Partition:   serve.PartitionHash,
		DefaultBObj: crowd.Cents(4),
		DefaultBPrc: crowd.Dollars(6),
	}
	for i := 0; i < nBackends; i++ {
		// Replicas: every backend draws the same seeded answer streams,
		// so a shard's estimates do not depend on which backend it lands
		// on — the configuration disq-serve -shards also builds.
		sim, err := disq.NewSimPlatform(u, disq.SimOptions{Seed: seed + 8})
		if err != nil {
			return err
		}
		cfg.Backends = append(cfg.Backends, serve.Backend{
			Name:     fmt.Sprintf("shard-%d", i),
			Platform: crowd.NewFaulty(sim, crowd.FaultyOptions{Latency: qLatency}),
		})
	}
	tier, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	exec := func(s int) (*serve.Result, error) {
		return tier.Execute(ctx, serve.Request{
			Statement: "SELECT Protein", MaxObjects: evalObjects, Shards: s,
		})
	}
	// Warm the plan once (a cache miss paying the latency-taxed
	// preprocess), excluded from both arms: the headline is online
	// scatter, not plan building.
	if _, err := exec(1); err != nil {
		return err
	}

	backendQuestions := func() []int64 {
		st := tier.Stats()
		out := make([]int64, len(st.Backends))
		for i, b := range st.Backends {
			out[i] = b.QuestionsAnswered
		}
		return out
	}
	runArm := func(s int) (int64, error) {
		runtime.GC()
		start := time.Now()
		for i := 0; i < armQueries; i++ {
			res, err := exec(s)
			if err != nil {
				return 0, err
			}
			if res.Shards != s {
				return 0, fmt.Errorf("shard bench: wanted %d shards, ran %d", s, res.Shards)
			}
		}
		return time.Since(start).Nanoseconds(), nil
	}

	q0 := backendQuestions()
	s1A, err := runArm(1)
	if err != nil {
		return err
	}
	q1 := backendQuestions()
	s4A, err := runArm(nShards)
	if err != nil {
		return err
	}
	q2 := backendQuestions()
	s4B, err := runArm(nShards)
	if err != nil {
		return err
	}
	s1B, err := runArm(1)
	if err != nil {
		return err
	}
	s1Ns, s4Ns := min(s1A, s1B), min(s4A, s4B)
	report.Benchmarks = append(report.Benchmarks,
		benchEntry{Name: "serve-sharded-s1", NsPerOp: s1Ns / armQueries},
		benchEntry{Name: "serve-sharded-s4", NsPerOp: s4Ns / armQueries},
	)
	if s4Ns > 0 {
		report.ShardScalingGain = float64(s1Ns) / float64(s4Ns)
	}
	// Per-backend work: the unsharded arm concentrates on the plan's home
	// backend (take the max delta); the sharded arm spreads 1/S of the
	// objects to each (take the mean delta). Question counts are
	// deterministic, so the first pass of each arm suffices.
	var q1max float64
	for i := range q1 {
		if d := float64(q1[i] - q0[i]); d > q1max {
			q1max = d
		}
	}
	var q4sum float64
	for i := range q2 {
		q4sum += float64(q2[i] - q1[i])
	}
	if q1max > 0 && len(q2) > 0 {
		report.ShardQuestionsPerBackend = q4sum / float64(len(q2)) / q1max
	}
	return nil
}
