package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// readReport loads a -bench -json document.
func readReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compareKey identifies one benchmark across reports.
type compareKey struct {
	name        string
	parallelism int
}

func (k compareKey) String() string {
	return fmt.Sprintf("%s/p%d", k.name, k.parallelism)
}

// compareReports prints per-benchmark ns/op deltas between two -bench
// JSON reports and returns whether any benchmark regressed by more than
// maxRegress (fractional; 0.10 = 10% slower). This is how the
// BENCH_*.json trajectory stays diffable: CI compares every run against
// BENCH_baseline.json, and a hand run compares any two snapshots.
func compareReports(w io.Writer, old, new *benchReport, maxRegress float64) bool {
	oldBy := make(map[compareKey]benchEntry, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[compareKey{b.Name, b.Parallelism}] = b
	}
	regressed := false
	fmt.Fprintf(w, "%-28s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	seen := make(map[compareKey]bool, len(new.Benchmarks))
	for _, nb := range new.Benchmarks {
		k := compareKey{nb.Name, nb.Parallelism}
		seen[k] = true
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "%-28s %15s %15d %9s\n", k, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = float64(nb.NsPerOp)/float64(ob.NsPerOp) - 1
		}
		mark := ""
		if delta > maxRegress {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-28s %15d %15d %+8.1f%%%s\n", k, ob.NsPerOp, nb.NsPerOp, 100*delta, mark)
		if ob.Err != 0 && nb.Err != ob.Err {
			fmt.Fprintf(w, "%-28s   err %.4f -> %.4f\n", "", ob.Err, nb.Err)
		}
	}
	for _, ob := range old.Benchmarks {
		k := compareKey{ob.Name, ob.Parallelism}
		if !seen[k] {
			fmt.Fprintf(w, "%-28s %15d %15s %9s\n", k, ob.NsPerOp, "-", "gone")
		}
	}
	if old.SweepSpeedup > 0 && new.SweepSpeedup > 0 {
		fmt.Fprintf(w, "sweep speedup (1 proc): %.2fx -> %.2fx\n", old.SweepSpeedup, new.SweepSpeedup)
	}
	// The NumCPU-wide measurement is informational and absent on
	// single-CPU hosts (either side of the comparison), so it is never
	// gated — only reported when present.
	switch {
	case old.SweepSpeedupNCPU > 0 && new.SweepSpeedupNCPU > 0:
		fmt.Fprintf(w, "sweep speedup (NumCPU): %.2fx -> %.2fx\n", old.SweepSpeedupNCPU, new.SweepSpeedupNCPU)
	case new.SweepSpeedupNCPU > 0:
		fmt.Fprintf(w, "sweep speedup (NumCPU): %.2fx (not in old report)\n", new.SweepSpeedupNCPU)
	case old.SweepSpeedupNCPU > 0:
		fmt.Fprintf(w, "sweep speedup (NumCPU): skipped in new report (single-CPU host)\n")
	}
	if new.SweepSharedGain > 0 {
		mark := ""
		// The shared-snapshot sweep must keep paying for itself: gate on
		// both the absolute contract (≥1.5× over rebuild-per-point) and a
		// relative slide beyond the regression threshold.
		if new.SweepSharedGain < 1.5 ||
			(old.SweepSharedGain > 0 && new.SweepSharedGain < old.SweepSharedGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.SweepSharedGain > 0 {
			fmt.Fprintf(w, "shared-snapshot gain (1 proc): %.2fx -> %.2fx%s\n",
				old.SweepSharedGain, new.SweepSharedGain, mark)
		} else {
			fmt.Fprintf(w, "shared-snapshot gain (1 proc): %.2fx%s\n", new.SweepSharedGain, mark)
		}
	}
	if new.CollectBatchGain > 0 {
		mark := ""
		// The batched wire collect must keep paying for itself: gate on the
		// absolute contract (≥1.3× over the per-question path) and on a
		// relative slide beyond the regression threshold. Old reports that
		// predate the measurement (field absent / 0) only skip the relative
		// half.
		if new.CollectBatchGain < 1.3 ||
			(old.CollectBatchGain > 0 && new.CollectBatchGain < old.CollectBatchGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.CollectBatchGain > 0 {
			fmt.Fprintf(w, "collect batch gain (remote): %.2fx -> %.2fx%s\n",
				old.CollectBatchGain, new.CollectBatchGain, mark)
		} else {
			fmt.Fprintf(w, "collect batch gain (remote): %.2fx%s\n", new.CollectBatchGain, mark)
		}
	}
	if new.QPS > 0 {
		mark := ""
		// Throughput: higher is better, so the regression direction flips —
		// new qps sliding below old by more than the threshold fails. There
		// is no absolute floor (the number is hardware-bound); CI's live
		// smoke run enforces its own -min-qps.
		if old.QPS > 0 && new.QPS < old.QPS*(1-maxRegress) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.QPS > 0 {
			fmt.Fprintf(w, "serve throughput: %.0f -> %.0f qps%s\n", old.QPS, new.QPS, mark)
		} else {
			fmt.Fprintf(w, "serve throughput: %.0f qps%s\n", new.QPS, mark)
		}
		if old.P99Ns > 0 && new.P99Ns > 0 {
			fmt.Fprintf(w, "serve latency: p50 %d -> %d ns, p99 %d -> %d ns\n",
				old.P50Ns, new.P50Ns, old.P99Ns, new.P99Ns)
		}
	}
	if new.PlanCacheGain > 0 {
		mark := ""
		// The plan cache must keep paying for itself: gate on the absolute
		// contract (≥3× cold over warm) and on a relative slide beyond the
		// regression threshold. Old reports that predate the measurement
		// only skip the relative half.
		if new.PlanCacheGain < 3 ||
			(old.PlanCacheGain > 0 && new.PlanCacheGain < old.PlanCacheGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.PlanCacheGain > 0 {
			fmt.Fprintf(w, "plan cache gain (serve): %.2fx -> %.2fx%s\n",
				old.PlanCacheGain, new.PlanCacheGain, mark)
		} else {
			fmt.Fprintf(w, "plan cache gain (serve): %.2fx%s\n", new.PlanCacheGain, mark)
		}
	}
	if new.ShardScalingGain > 0 {
		mark := ""
		// The scatter-gather path must keep hiding crowd latency: gate on
		// the absolute contract (≥1.5× for S=4 over S=1) and on a relative
		// slide beyond the regression threshold. Old reports that predate
		// the measurement only skip the relative half.
		if new.ShardScalingGain < 1.5 ||
			(old.ShardScalingGain > 0 && new.ShardScalingGain < old.ShardScalingGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.ShardScalingGain > 0 {
			fmt.Fprintf(w, "shard scaling gain (serve): %.2fx -> %.2fx%s\n",
				old.ShardScalingGain, new.ShardScalingGain, mark)
		} else {
			fmt.Fprintf(w, "shard scaling gain (serve): %.2fx%s\n", new.ShardScalingGain, mark)
		}
	}
	if new.ShardQuestionsPerBackend > 0 {
		mark := ""
		// Lower is better here (each backend should answer ~1/S of the
		// questions): gate on the absolute contract (≤0.5 at S=4) and on
		// growth beyond the regression threshold.
		if new.ShardQuestionsPerBackend > 0.5 ||
			(old.ShardQuestionsPerBackend > 0 && new.ShardQuestionsPerBackend > old.ShardQuestionsPerBackend*(1+maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.ShardQuestionsPerBackend > 0 {
			fmt.Fprintf(w, "shard questions/backend: %.2f -> %.2f%s\n",
				old.ShardQuestionsPerBackend, new.ShardQuestionsPerBackend, mark)
		} else {
			fmt.Fprintf(w, "shard questions/backend: %.2f%s\n", new.ShardQuestionsPerBackend, mark)
		}
	}
	if new.PredicateSkipGain > 0 {
		mark := ""
		// The lazy evaluator must keep at least halving the online bill on
		// a selective filter: gate on the absolute contract (≥2×) and on a
		// relative slide beyond the regression threshold. Deterministic
		// money — a slide is a behavior change, never machine noise. Old
		// reports that predate the measurement only skip the relative half.
		if new.PredicateSkipGain < 2 ||
			(old.PredicateSkipGain > 0 && new.PredicateSkipGain < old.PredicateSkipGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.PredicateSkipGain > 0 {
			fmt.Fprintf(w, "predicate skip gain (lazy): %.2fx -> %.2fx%s\n",
				old.PredicateSkipGain, new.PredicateSkipGain, mark)
		} else {
			fmt.Fprintf(w, "predicate skip gain (lazy): %.2fx%s\n", new.PredicateSkipGain, mark)
		}
	}
	if new.TopKPruneGain > 0 {
		mark := ""
		// The exact top-k prune returns bit-equal rows, so any spend saved
		// is pure profit — but it must keep saving: gate on the absolute
		// contract (≥1.1×) and on a relative slide beyond the threshold.
		if new.TopKPruneGain < 1.1 ||
			(old.TopKPruneGain > 0 && new.TopKPruneGain < old.TopKPruneGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.TopKPruneGain > 0 {
			fmt.Fprintf(w, "topk prune gain (lazy): %.2fx -> %.2fx%s\n",
				old.TopKPruneGain, new.TopKPruneGain, mark)
		} else {
			fmt.Fprintf(w, "topk prune gain (lazy): %.2fx%s\n", new.TopKPruneGain, mark)
		}
	}
	if new.AnswerReuseGain > 0 {
		mark := ""
		// The answer cache returns bit-equal rows at lower spend, so the
		// gain is pure money and deterministic by construction (the bench
		// workload overlaps every object twice, making 2.0 the built-in
		// value): gate on the absolute contract (≥1.5×) and on a relative
		// slide beyond the threshold. A slide is a behavior change, never
		// machine noise. Old reports that predate the measurement only skip
		// the relative half.
		if new.AnswerReuseGain < 1.5 ||
			(old.AnswerReuseGain > 0 && new.AnswerReuseGain < old.AnswerReuseGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.AnswerReuseGain > 0 {
			fmt.Fprintf(w, "answer reuse gain (serve): %.2fx -> %.2fx%s\n",
				old.AnswerReuseGain, new.AnswerReuseGain, mark)
		} else {
			fmt.Fprintf(w, "answer reuse gain (serve): %.2fx%s\n", new.AnswerReuseGain, mark)
		}
	}
	if new.AdaptiveSpendGain > 0 {
		mark := ""
		// The adaptive evaluator must keep delivering its headline: gate on
		// the absolute contract (≥1.2× — equal-quality estimates at ≥20%
		// lower online spend) and on a relative slide beyond the regression
		// threshold. The ratio is deterministic money, not wall-clock, so a
		// slide here is a behavior change, never machine noise. Old reports
		// that predate the measurement only skip the relative half.
		if new.AdaptiveSpendGain < 1.2 ||
			(old.AdaptiveSpendGain > 0 && new.AdaptiveSpendGain < old.AdaptiveSpendGain*(1-maxRegress)) {
			mark = "  REGRESSION"
			regressed = true
		}
		if old.AdaptiveSpendGain > 0 {
			fmt.Fprintf(w, "adaptive spend gain (online): %.2fx -> %.2fx%s\n",
				old.AdaptiveSpendGain, new.AdaptiveSpendGain, mark)
		} else {
			fmt.Fprintf(w, "adaptive spend gain (online): %.2fx%s\n", new.AdaptiveSpendGain, mark)
		}
		if new.FixedErr > 0 && new.AdaptiveErr > 0 {
			fmt.Fprintf(w, "adaptive accuracy: fixed err %.4f, adaptive err %.4f\n",
				new.FixedErr, new.AdaptiveErr)
		}
	}
	return regressed
}

// runCompare is the -compare entry point: old.json vs new.json, nonzero
// exit (via the returned flag) on a regression beyond maxRegress.
func runCompare(oldPath, newPath string, maxRegress float64) (regressed bool, err error) {
	old, err := readReport(oldPath)
	if err != nil {
		return false, err
	}
	new, err := readReport(newPath)
	if err != nil {
		return false, err
	}
	regressed = compareReports(os.Stdout, old, new, maxRegress)
	if regressed {
		fmt.Printf("FAIL: at least one benchmark regressed more than %.0f%%\n", 100*maxRegress)
	}
	return regressed, nil
}
