// Command disq-bench regenerates the tables and figures of the paper's
// evaluation (Section 5). Each experiment is identified by the id used in
// DESIGN.md's per-experiment index.
//
// Usage:
//
//	disq-bench -list                 # show all experiment ids
//	disq-bench -experiment fig1a     # regenerate one figure
//	disq-bench -all                  # regenerate everything (slow)
//	disq-bench -experiment fig1e -reps 10 -csv out/   # fewer reps, CSV dump
//	disq-bench -bench -json BENCH.json                # machine-readable benchmarks
//	disq-bench -compare old.json new.json             # diff two -bench reports
//
// -compare exits nonzero when any benchmark regressed by more than
// -max-regress (default 10%); CI runs it with a loose threshold so only
// order-of-magnitude regressions fail the build.
//
// The paper uses 30 repetitions per configuration; -reps trades fidelity
// for speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the actual entry point so the profiling defers run
// before the process exits (os.Exit skips defers).
func realMain() int {
	var (
		list  = flag.Bool("list", false, "list experiment ids and exit")
		expID = flag.String("experiment", "", "experiment id to regenerate")
		all   = flag.Bool("all", false, "regenerate every experiment")
		reps  = flag.Int("reps", 0, "repetitions per configuration (0 = paper default of 30)")
		evalN = flag.Int("objects", 0, "evaluation objects per repetition (0 = default of 100)")
		seed  = flag.Int64("seed", 0, "seed offset for all platforms")
		out   = flag.String("out", "", "directory to also write each result as <id>.txt")
		bench = flag.Bool("bench", false, "run the benchmark suite instead of regenerating figures")
		jsonP = flag.String("json", "", "with -bench: write the JSON report here (default stdout)")

		compare    = flag.Bool("compare", false, "compare two -bench JSON reports: -compare old.json new.json")
		maxRegress = flag.Float64("max-regress", 0.10, "with -compare: fail when ns/op regresses by more than this fraction")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "disq-bench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "disq-bench:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "disq-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "disq-bench:", err)
			}
		}()
	}
	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "disq-bench: -compare takes exactly two arguments: old.json new.json")
			return 2
		}
		regressed, err := runCompare(args[0], args[1], *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "disq-bench:", err)
			return 1
		}
		if regressed {
			return 1
		}
		return 0
	}
	if *bench {
		if err := runBench(*jsonP, *reps, *evalN, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "disq-bench:", err)
			return 1
		}
		return 0
	}
	if err := run(*list, *expID, *all, *reps, *evalN, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "disq-bench:", err)
		return 1
	}
	return 0
}

func run(list bool, expID string, all bool, reps, evalN int, seed int64, out string) error {
	if list {
		fmt.Print(experimentList())
		return nil
	}
	var ids []string
	switch {
	case all:
		ids = allIDs()
	case expID != "":
		ids = []string{expID}
	default:
		return fmt.Errorf("pass -list, -experiment <id> or -all")
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		text, title, err := runOne(id, reps, evalN, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("== %s: %s\n%s\n", id, title, text)
		if out != "" {
			path := filepath.Join(out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func runOne(id string, reps, evalN int, seed int64) (text, title string, err error) {
	fig, ok := lookup(id)
	if !ok {
		return "", "", fmt.Errorf("unknown experiment (use -list)")
	}
	start := time.Now()
	text, err = fig.run(reps, evalN, seed)
	if err != nil {
		return "", "", err
	}
	text += fmt.Sprintf("(regenerated in %s)\n", time.Since(start).Round(time.Millisecond))
	return text, fig.title, nil
}
