// Command disq-load drives query traffic at a disq-serve instance
// running in -serve-queries mode and reports throughput, tail latency
// and the plan-cache gain — the serving tier's benchmark harness, and
// the smoke gate CI runs against a live two-backend deployment.
//
// Traffic is closed-loop by default (-concurrency workers back to back);
// -rate switches to open-loop arrivals (fixed interval, independent of
// completions, arrivals beyond -concurrency outstanding are shed — the
// shape that exposes queueing collapse). Statements and SLO classes are
// cycled per arrival, so a mixed workload is one flag away. -topk k
// appends a top-k ordered statement to the mix, -lazy opts every
// session into the server's lazy predicate-ordered evaluator (the
// report then totals objects_pruned / questions_skipped), and -reuse
// opts every session into the shared answer cache (needs disq-serve
// -answer-cache > 0; the report totals answers_reused /
// spend_saved_mills).
//
// -gain additionally measures the plan cache cold/warm split: probes in
// ABBA order against fresh vs pre-warmed plan keys, medians of each
// side, reported as cold_p50 / warm_p50.
//
// Gating (for CI): -min-qps and -max-errors turn the report into an
// exit status, and -min-gain does the same for the -gain measurement.
//
// Usage:
//
//	disq-serve -serve-queries -backends 2 -addr 127.0.0.1:8080 &
//	disq-load -addr http://127.0.0.1:8080 -duration 5s
//	disq-load -addr http://127.0.0.1:8080 -statements 'SELECT Protein; SELECT Calories WHERE Dessert > 0.5'
//	disq-load -addr http://127.0.0.1:8080 -topk 3 -lazy
//	disq-load -addr http://127.0.0.1:8080 -reuse
//	disq-load -addr http://127.0.0.1:8080 -gain -min-gain 3
//	disq-load -addr http://127.0.0.1:8080 -duration 5s -min-qps 10 -max-errors 0 -json report.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/crowd"
	"repro/internal/crowdhttp"
	"repro/internal/serve"
)

// report is the JSON the harness emits: the load run, the optional gain
// measurement, and the server-side stats snapshot taken after the run.
type report struct {
	Target     string            `json:"target"`
	Statements []string          `json:"statements"`
	Classes    []string          `json:"classes,omitempty"`
	Shards     int               `json:"shards,omitempty"`
	Load       *serve.LoadReport `json:"load,omitempty"`
	Gain       *serve.CacheGain  `json:"gain,omitempty"`
	Server     *serve.Stats      `json:"server,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "disq-serve -serve-queries base URL")
		statements  = flag.String("statements", "SELECT Protein; SELECT Calories", "semicolon-separated statements, cycled per arrival")
		classes     = flag.String("classes", "", "comma-separated SLO classes, cycled per arrival (empty = interactive)")
		concurrency = flag.Int("concurrency", 8, "in-flight session bound")
		rate        = flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
		duration    = flag.Duration("duration", 5*time.Second, "load run length")
		maxObjects  = flag.Int("max-objects", 16, "objects evaluated per query (0 = all registered)")
		bObjCents   = flag.Float64("bobj-cents", 0, "per-object budget override, cents (0 = server default)")
		bPrcDollars = flag.Float64("bprc-dollars", 0, "preprocessing budget override, dollars (0 = server default)")
		adaptiveOn  = flag.Bool("adaptive", false, "opt every session into the server's adaptive online evaluator")
		lazyOn      = flag.Bool("lazy", false, "opt every session into the server's lazy predicate-ordered evaluator")
		reuseOn     = flag.Bool("reuse", false, "opt every session into the server's shared answer cache (needs disq-serve -answer-cache > 0)")
		topK        = flag.Int("topk", 0, "append 'SELECT Protein ORDER BY Protein DESC LIMIT k' to the statement mix (0 = off)")
		shards      = flag.Int("shards", 0, "per-session shard-count override (0 = server default)")

		gain       = flag.Bool("gain", false, "also measure the plan-cache cold/warm gain (first statement)")
		gainProbes = flag.Int("gain-probes", 3, "cold/warm probe pairs for -gain")

		jsonPath  = flag.String("json", "", "write the report as JSON to this file ('-' = stdout)")
		minQPS    = flag.Float64("min-qps", 0, "gate: exit 1 when qps falls below this")
		maxErrors = flag.Int64("max-errors", -1, "gate: exit 1 when errors exceed this (-1 = no gate)")
		minGain   = flag.Float64("min-gain", 0, "gate: exit 1 when -gain measures below this")
		skipLoad  = flag.Bool("no-load", false, "skip the load run (e.g. -gain only)")
	)
	flag.Parse()
	if err := run(*addr, *statements, *classes, *concurrency, *rate, *duration, *maxObjects,
		*bObjCents, *bPrcDollars, *adaptiveOn, *lazyOn, *reuseOn, *topK, *shards, *gain, *gainProbes, *jsonPath, *minQPS, *maxErrors, *minGain, *skipLoad); err != nil {
		fmt.Fprintln(os.Stderr, "disq-load:", err)
		os.Exit(1)
	}
}

func run(addr, statements, classes string, concurrency int, rate float64, duration time.Duration,
	maxObjects int, bObjCents, bPrcDollars float64, adaptiveOn, lazyOn, reuseOn bool, topK, shards int, gain bool, gainProbes int,
	jsonPath string, minQPS float64, maxErrors int64, minGain float64, skipLoad bool) error {
	stmts := splitList(statements, ";")
	if len(stmts) == 0 {
		return fmt.Errorf("-statements is empty")
	}
	if concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1, got %d", concurrency)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration must be > 0, got %v", duration)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if topK < 0 {
		return fmt.Errorf("-topk must be >= 0, got %d", topK)
	}
	if topK > 0 {
		stmts = append(stmts, fmt.Sprintf("SELECT Protein ORDER BY Protein DESC LIMIT %d", topK))
	}
	if adaptiveOn && lazyOn {
		return fmt.Errorf("-adaptive and -lazy are mutually exclusive")
	}
	client := crowdhttp.NewQueryClient(strings.TrimRight(addr, "/"), nil)
	rep := &report{Target: addr, Statements: stmts, Classes: splitList(classes, ","), Shards: shards}
	bObj := crowd.Cost(bObjCents * 10)
	bPrc := crowd.Cost(bPrcDollars * 1000)

	if !skipLoad {
		load, err := serve.RunLoad(client, serve.LoadConfig{
			Statements:  stmts,
			Classes:     rep.Classes,
			Concurrency: concurrency,
			Rate:        rate,
			Duration:    duration,
			MaxObjects:  maxObjects,
			BObj:        bObj,
			BPrc:        bPrc,
			Adaptive:    adaptiveOn,
			Lazy:        lazyOn,
			Reuse:       reuseOn,
			Shards:      shards,
		})
		if err != nil {
			return err
		}
		rep.Load = load
		fmt.Printf("load: %d queries in %s  qps %.1f  p50 %s  p99 %s  cache-hits %d  errors %d  rejected %d  shed %d\n",
			load.Queries, load.Elapsed.Round(time.Millisecond), load.QPS,
			load.P50.Round(time.Microsecond), load.P99.Round(time.Microsecond),
			load.CacheHits, load.Errors, load.Rejected, load.Shed)
		if lazyOn {
			fmt.Printf("lazy: objects-pruned %d  questions-skipped %d\n",
				load.ObjectsPruned, load.QuestionsSkipped)
		}
		if reuseOn {
			fmt.Printf("reuse: answers-reused %d  spend-saved %d mills\n",
				load.AnswersReused, load.SpendSavedMills)
		}
	}

	if gain {
		g, err := serve.MeasureCacheGain(client, serve.GainConfig{
			Statement:  stmts[0],
			Probes:     gainProbes,
			MaxObjects: maxObjects,
			BObj:       bObj,
			BPrc:       bPrc,
		})
		if err != nil {
			return fmt.Errorf("gain measurement: %w", err)
		}
		rep.Gain = g
		fmt.Printf("plan cache: cold p50 %s  warm p50 %s  gain %.1fx\n",
			g.ColdP50.Round(time.Microsecond), g.WarmP50.Round(time.Microsecond), g.Gain)
	}

	if st, err := client.Stats(context.Background()); err == nil {
		rep.Server = st
	} else {
		fmt.Fprintf(os.Stderr, "disq-load: fetching server stats: %v\n", err)
	}

	if jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(out)
		} else {
			err = os.WriteFile(jsonPath, out, 0o644)
		}
		if err != nil {
			return err
		}
	}

	// Gates last, so the report is always written first.
	if rep.Load != nil {
		if minQPS > 0 && rep.Load.QPS < minQPS {
			return fmt.Errorf("gate: qps %.1f below -min-qps %.1f", rep.Load.QPS, minQPS)
		}
		if maxErrors >= 0 && rep.Load.Errors > maxErrors {
			return fmt.Errorf("gate: %d errors exceed -max-errors %d", rep.Load.Errors, maxErrors)
		}
	}
	if rep.Gain != nil && minGain > 0 && rep.Gain.Gain < minGain {
		return fmt.Errorf("gate: plan cache gain %.2fx below -min-gain %.2fx", rep.Gain.Gain, minGain)
	}
	return nil
}

func splitList(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
