// Command disq-gen inspects and exports the object domains: it reproduces
// the paper's Table 4 (dismantling answers and frequencies) and Table 5
// (attribute statistics), dumps domain definitions, generates synthetic
// universes, and exports collected answer tables as CSV/JSON.
//
// Usage:
//
//	disq-gen -table4                        # dismantling answer tables
//	disq-gen -table5                        # statistics tables
//	disq-gen -domain recipes -describe      # list a domain's attributes
//	disq-gen -domain pictures -sample 5     # sample objects with truths
//	disq-gen -synthetic -attrs 12 -factors 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/domain"
	"repro/internal/experiment"
)

func main() {
	var (
		table4     = flag.Bool("table4", false, "reproduce Table 4")
		table5     = flag.Bool("table5", false, "reproduce Table 5")
		domainName = flag.String("domain", "recipes", "domain to inspect")
		describe   = flag.Bool("describe", false, "list the domain's attributes")
		sample     = flag.Int("sample", 0, "sample N objects and print their true values")
		synthetic  = flag.Bool("synthetic", false, "generate a synthetic universe and describe it")
		attrs      = flag.Int("attrs", 12, "synthetic: attribute count")
		factors    = flag.Int("factors", 3, "synthetic: latent factor count")
		binFrac    = flag.Float64("binary", 0.5, "synthetic: fraction of binary attributes")
		junk       = flag.Int("junk", 2, "synthetic: junk attribute count")
		seed       = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if err := run(*table4, *table5, *domainName, *describe, *sample, *synthetic,
		*attrs, *factors, *binFrac, *junk, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "disq-gen:", err)
		os.Exit(1)
	}
}

func run(table4, table5 bool, domainName string, describe bool, sample int,
	synthetic bool, attrs, factors int, binFrac float64, junk int, seed int64) error {
	did := false
	if table4 {
		did = true
		f, _ := experiment.Lookup("table4")
		out, err := f.Run(experiment.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if table5 {
		did = true
		f, _ := experiment.Lookup("table5")
		out, err := f.Run(experiment.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if synthetic {
		did = true
		u, err := domain.Synthetic(rand.New(rand.NewSource(seed)), domain.SyntheticConfig{
			Attributes:     attrs,
			Factors:        factors,
			BinaryFraction: binFrac,
			JunkAttributes: junk,
		})
		if err != nil {
			return err
		}
		describeUniverse(u)
	}
	if describe || sample > 0 {
		did = true
		build, ok := domain.Registry()[domainName]
		if !ok {
			return fmt.Errorf("unknown domain %q", domainName)
		}
		u := build()
		if describe {
			describeUniverse(u)
		}
		if sample > 0 {
			if err := sampleObjects(u, sample, seed); err != nil {
				return err
			}
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -table4, -table5, -describe, -sample or -synthetic")
	}
	return nil
}

func describeUniverse(u *domain.Universe) {
	names := u.Attributes()
	fmt.Printf("universe %q: %d attributes\n", u.Name, len(names))
	fmt.Printf("  %-24s %-7s %10s %10s %10s %10s  %s\n",
		"attribute", "kind", "mean", "sigma", "noise", "distort", "synonyms")
	for _, n := range names {
		a, _ := u.Attribute(n)
		kind := "numeric"
		if a.Binary {
			kind = "binary"
		}
		fmt.Printf("  %-24s %-7s %10.4g %10.4g %10.4g %10.4g  %s\n",
			a.Name, kind, a.Mean, a.Sigma, a.Noise, a.Distortion, strings.Join(a.Synonyms, ", "))
	}
	for _, t := range u.GoldTargets() {
		fmt.Printf("  gold[%s] = %s\n", t, strings.Join(u.GoldStandard(t), ", "))
	}
}

func sampleObjects(u *domain.Universe, n int, seed int64) error {
	objs := u.NewObjects(rand.New(rand.NewSource(seed)), n)
	names := u.Attributes()
	if len(names) > 8 {
		names = names[:8]
	}
	header := "  object"
	for _, a := range names {
		header += fmt.Sprintf(" %14s", strings.ReplaceAll(a, " ", ""))
	}
	fmt.Println(header)
	for _, o := range objs {
		row := fmt.Sprintf("  %6d", o.ID)
		for _, a := range names {
			v, err := u.Truth(o, a)
			if err != nil {
				return err
			}
			row += fmt.Sprintf(" %14.3f", v)
		}
		fmt.Println(row)
	}
	return nil
}
