// Recipes: the CrowdCooking.com scenario from the paper's introduction —
// a multi-attribute query over recipes (calories AND protein), showing how
// the Section 4 extension shares discovered attributes and statistics
// between correlated query attributes instead of solving them separately.
//
//	go run ./examples/recipes
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	disq "repro"
)

func main() {
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// The query of the introduction: "dessert recipes ... with less than X
	// calories and a certain amount of proteins" needs per-recipe values
	// for Calories and Protein — neither is in the database.
	query := disq.Query{Targets: []string{"Calories", "Protein"}}
	plan, err := disq.Preprocess(platform, query, disq.Cents(6), disq.Dollars(30), disq.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovered attributes (shared across both targets):")
	for _, a := range plan.Discovered {
		fmt.Println("  -", a)
	}
	fmt.Println("\nper-target formulas:")
	for _, t := range plan.Targets {
		fmt.Println("  " + plan.Formula(t))
	}
	fmt.Printf("\nonline budget distribution (cost %v per object): %v\n\n",
		plan.PerObjectCost(), plan.Budget.Counts)

	// Evaluate a batch and report per-target RMSE.
	universe := platform.Universe()
	objs := universe.NewObjects(rand.New(rand.NewSource(5)), 40)
	estimates, err := disq.EvaluateObjects(platform, plan, objs)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range plan.Targets {
		var se float64
		for i, o := range objs {
			truth, _ := universe.Truth(o, t)
			d := estimates[i][t] - truth
			se += d * d
		}
		fmt.Printf("%-10s RMSE over %d recipes: %.1f\n", t, len(objs), math.Sqrt(se/float64(len(objs))))
	}

	// The query of the introduction, answered: dessert-ish recipes with
	// fewer than 350 calories and at least 10g protein.
	fmt.Println("\nrecipes matching \"calories < 350 AND protein > 10\":")
	for i, o := range objs {
		if estimates[i]["Calories"] < 350 && estimates[i]["Protein"] > 10 {
			fmt.Printf("  recipe %d (est. %.0f kcal, %.1fg protein)\n",
				o.ID, estimates[i]["Calories"], estimates[i]["Protein"])
		}
	}
}
