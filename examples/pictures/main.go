// Pictures: the Bmi estimation scenario of Section 5.2, comparing DisQ's
// plan against the naive strategy of spending the same online budget on
// direct questions — live, on the same simulated crowd (the paper's
// recorded-answer reuse makes the comparison apples-to-apples).
//
//	go run ./examples/pictures
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	disq "repro"
)

func main() {
	platform, err := disq.NewSimPlatform(disq.Pictures(), disq.SimOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	universe := platform.Universe()
	bObj := disq.Cents(4)

	plan, err := disq.Preprocess(platform,
		disq.Query{Targets: []string{"Bmi"}}, bObj, disq.Dollars(30), disq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DisQ plan:", plan.Formula("Bmi"))

	// NaiveAverage with the same per-object budget: 4¢ buys 10 direct
	// numeric Bmi questions.
	pricing := platform.Pricing()
	naiveN := int(bObj / pricing.NumericValue)
	fmt.Printf("NaiveAverage: mean of %d direct Bmi answers\n\n", naiveN)

	people := universe.NewObjects(rand.New(rand.NewSource(11)), 60)
	var disqSE, naiveSE float64
	for _, person := range people {
		truth, _ := universe.Truth(person, "Bmi")
		est, err := plan.EstimateObject(platform, person)
		if err != nil {
			log.Fatal(err)
		}
		answers, err := platform.Value(person, "Bmi", naiveN)
		if err != nil {
			log.Fatal(err)
		}
		var naive float64
		for _, a := range answers {
			naive += a
		}
		naive /= float64(len(answers))

		d := est["Bmi"] - truth
		disqSE += d * d
		d = naive - truth
		naiveSE += d * d
	}
	n := float64(len(people))
	fmt.Printf("over %d people at %v per object:\n", len(people), bObj)
	fmt.Printf("  DisQ         RMSE %.2f Bmi units\n", math.Sqrt(disqSE/n))
	fmt.Printf("  NaiveAverage RMSE %.2f Bmi units\n", math.Sqrt(naiveSE/n))
}
