// Quickstart: estimate a hard query attribute (the protein content of
// recipes) with DisQ against the built-in simulated crowd.
//
// It mirrors the paper's running example: asking workers directly about
// protein_amount is hopeless (their answers carry large systematic bias),
// so the offline phase dismantles the attribute into easier related ones
// (has_meat, vegetarian, high_protein, ...) and assembles a linear
// formula over them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	disq "repro"
)

func main() {
	// A simulated crowd over the recipes universe. Seeding makes the whole
	// run reproducible; a real deployment would implement disq.Platform on
	// top of an actual crowdsourcing service instead.
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	// Offline phase: $25 of preprocessing budget to plan how to spend
	// 4¢ per object online.
	plan, err := disq.Preprocess(platform,
		disq.Query{Targets: []string{"Protein"}},
		disq.Cents(4),
		disq.Dollars(25),
		disq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived formula:")
	fmt.Println("  " + plan.Formula("Protein"))
	fmt.Printf("preprocessing spent %v, asked %d dismantling questions\n\n",
		plan.PreprocessCost, plan.Dismantles)

	// Online phase: evaluate fresh recipes.
	universe := platform.Universe()
	recipes := universe.NewObjects(rand.New(rand.NewSource(7)), 5)
	estimates, err := disq.EvaluateObjects(platform, plan, recipes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("object   estimate   truth")
	for i, o := range recipes {
		truth, _ := universe.Truth(o, "Protein")
		fmt.Printf("%6d %10.1f %7.1f\n", o.ID, estimates[i]["Protein"], truth)
	}
	fmt.Printf("\neach object cost %v of crowd questions\n", plan.PerObjectCost())
}
