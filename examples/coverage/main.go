// Coverage: the Section 5.3.1 experiment — can the crowd replace the
// domain expert? For each domain with a declared gold-standard attribute
// set, run DisQ's discovery phase and check which gold attributes it
// found, against the naive variant that only dismantles the query
// attribute itself.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"

	disq "repro"
)

func main() {
	scenarios := []struct {
		universe *disq.Universe
		target   string
	}{
		{disq.Pictures(), "Height"},
		{disq.Pictures(), "Weight"},
		{disq.Recipes(), "Protein"},
		{disq.Recipes(), "Calories"},
		{disq.Houses(), "Price"},
		{disq.Laptops(), "Price"},
	}
	fmt.Printf("%-10s %-10s %28s %28s\n", "domain", "target", "DisQ found", "query-attrs-only found")
	for i, sc := range scenarios {
		platform, err := disq.NewSimPlatform(sc.universe, disq.SimOptions{Seed: int64(100 + i)})
		if err != nil {
			log.Fatal(err)
		}
		gold := sc.universe.GoldStandard(sc.target)
		query := disq.Query{Targets: []string{sc.target}}

		full, err := disq.Preprocess(platform, query, disq.Cents(4), disq.Dollars(30), disq.Options{})
		if err != nil {
			log.Fatal(err)
		}
		naive, err := disq.Preprocess(platform, query, disq.Cents(4), disq.Dollars(30),
			disq.Options{OnlyQueryAttributes: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10s %22d / %-3d %22d / %-3d\n",
			sc.universe.Name, sc.target,
			hits(platform, full.Discovered, gold), len(gold),
			hits(platform, naive.Discovered, gold), len(gold))
	}
	fmt.Println("\n(gold sets stand in for the paper's expert-provided attribute lists)")
}

func hits(p *disq.SimPlatform, discovered, gold []string) int {
	found := make(map[string]bool, len(discovered))
	for _, a := range discovered {
		found[p.Canonical(a)] = true
	}
	n := 0
	for _, g := range gold {
		if found[p.Canonical(g)] {
			n++
		}
	}
	return n
}
