// SQL-style query evaluation: the paper's introduction imagines upgrading
// a recipe site's search to "dessert recipes that are easy to make, have
// less than X calories and contain a certain amount of proteins" — this
// example runs exactly that as a SELECT/WHERE statement whose attributes
// are all estimated by the crowd, and also demonstrates plan persistence
// (preprocess once, save, reload, query).
//
//	go run ./examples/sqlquery
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	disq "repro"
)

func main() {
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 314})
	if err != nil {
		log.Fatal(err)
	}

	statement, err := disq.ParseQuery(
		"SELECT Calories, Protein, Dessert WHERE Dessert > 0.5 AND Calories < 450 AND Easy To Make > 0.5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", statement)
	fmt.Println("crowd-estimated attributes needed:", statement.Attributes())

	// Preprocess once for all referenced attributes, then persist the plan.
	plan, err := disq.Preprocess(platform, statement.Query(),
		disq.Cents(6), disq.Dollars(40), disq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "disq-plan")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	planPath := filepath.Join(dir, "plan.json")
	if err := plan.Save(planPath); err != nil {
		log.Fatal(err)
	}
	reloaded, err := disq.LoadPlan(planPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan saved and reloaded from %s (preprocessing cost %v)\n\n",
		planPath, plan.PreprocessCost)

	engine, err := disq.NewQueryEngine(platform, reloaded, statement)
	if err != nil {
		log.Fatal(err)
	}
	recipes := platform.Universe().NewObjects(rand.New(rand.NewSource(27)), 60)
	rows, err := engine.Execute(statement, recipes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d recipes match:\n", len(rows), len(recipes))
	for _, r := range rows {
		fmt.Printf("  recipe %3d: %4.0f kcal, %4.1fg protein, dessert-score %.2f\n",
			r.Object.ID, r.Values["Calories"], r.Values["Protein"], r.Values["Dessert"])
	}
	fmt.Printf("\nonline cost: %v per recipe\n", reloaded.PerObjectCost())
}
