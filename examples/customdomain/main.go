// Custom domain: build your own object universe (a used-car marketplace),
// run DisQ on it, and use the quality layer to audit the simulated workers
// — everything a downstream adopter would do to apply the library to a new
// problem.
//
//	go run ./examples/customdomain
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	disq "repro"
	"repro/internal/quality"
)

func main() {
	// A marketplace of used cars; the query attribute is the fair Price,
	// which crowd workers systematically misjudge (Distortion), while
	// simpler attributes (mileage bucket, body type) are easy.
	universe, err := disq.NewUniverse(disq.UniverseConfig{
		Name: "usedcars",
		Attributes: []disq.Attribute{
			{Name: "Price", Mean: 15000, Sigma: 7000, Noise: 6000, Distortion: 4500,
				Loadings: map[string]float64{"value": 0.75, "age": -0.45}},
			{Name: "Mileage", Mean: 90000, Sigma: 50000, Noise: 25000, Distortion: 9000,
				Loadings: map[string]float64{"age": 0.85}},
			{Name: "Model Year", Mean: 2015, Sigma: 5, Noise: 2, Distortion: 0.8,
				Loadings: map[string]float64{"age": -0.9}},
			{Name: "Looks New", Binary: true, Noise: 0.12, Distortion: 0.05,
				Loadings: map[string]float64{"age": -0.6, "value": 0.3}},
			{Name: "Luxury Brand", Binary: true, Noise: 0.06, Distortion: 0.02,
				Loadings: map[string]float64{"value": 0.75}},
			{Name: "Has Scratches", Binary: true, Noise: 0.1, Distortion: 0.04,
				Loadings: map[string]float64{"age": 0.5, "value": -0.2}},
			{Name: "Red Paint", Binary: true, Noise: 0.05, Distortion: 0.02,
				Loadings: map[string]float64{}},
		},
		Dismantle: map[string][]disq.DismantleAnswer{
			"Price": {
				{Name: "Luxury Brand", Weight: 14},
				{Name: "Model Year", Weight: 12},
				{Name: "Looks New", Weight: 8},
				{Name: "Mileage", Weight: 6},
				{Name: "Has Scratches", Weight: 4},
				{Name: "Red Paint", Weight: 6},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// A platform with some unfiltered spam workers.
	platform, err := disq.NewSimPlatform(universe, disq.SimOptions{
		Seed: 7, SpamRate: 0.15, FilterEfficiency: 0.5, PoolSize: 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	plan, err := disq.Preprocess(platform, disq.Query{Targets: []string{"Price"}},
		disq.Cents(5), disq.Dollars(25), disq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived:", plan.Formula("Price"))

	cars := universe.NewObjects(rand.New(rand.NewSource(9)), 50)
	var se float64
	for _, car := range cars {
		est, err := plan.EstimateObject(platform, car)
		if err != nil {
			log.Fatal(err)
		}
		truth, _ := universe.Truth(car, "Price")
		d := est["Price"] - truth
		se += d * d
	}
	fmt.Printf("price RMSE over %d cars: $%.0f (truth σ $7000)\n\n", len(cars), math.Sqrt(se/float64(len(cars))))

	// Quality audit: collect detailed answers and flag suspect workers.
	var cells []quality.Cell
	for _, car := range cars {
		det, err := platform.ValueDetailed(car, "Price", 6)
		if err != nil {
			log.Fatal(err)
		}
		c := quality.Cell{}
		for _, a := range det {
			c.Values = append(c.Values, a.Value)
			c.Workers = append(c.Workers, a.Worker)
		}
		cells = append(cells, c)
	}
	workers, err := quality.EstimateWorkers(cells, quality.Options{})
	if err != nil {
		log.Fatal(err)
	}
	suspects := quality.SpamSuspects(workers, 2.5)
	fmt.Printf("quality audit: scored %d workers, flagged %d spam suspects: %v\n",
		len(workers), len(suspects), suspects)
}
