// Remote platform: runs the full DisQ pipeline against a crowd platform
// served over HTTP in the same process — the deployment shape of a real
// crowdsourcing integration, where the crowd service lives behind an API
// and the query processor budgets itself locally.
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	disq "repro"
)

func main() {
	// The "crowd service": a simulated platform behind the HTTP adapter.
	backend, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 2718})
	if err != nil {
		log.Fatal(err)
	}
	server := disq.NewCrowdServer(backend)
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: server.Handler()}
	go httpServer.Serve(listener)
	defer httpServer.Close()
	baseURL := "http://" + listener.Addr().String()
	fmt.Println("crowd service listening at", baseURL)

	// The "query processor": a client that only speaks the HTTP API.
	client := disq.NewCrowdClient(baseURL, nil)
	plan, err := disq.Preprocess(client,
		disq.Query{Targets: []string{"Protein"}},
		disq.Cents(4), disq.Dollars(20), disq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nderived over HTTP:", plan.Formula("Protein"))
	fmt.Printf("preprocessing spent %v (budget enforced client-side)\n", plan.PreprocessCost)

	// Online phase: the database owner registers its objects with the
	// crowd service, the query processor references them by id.
	objects := backend.Universe().NewObjects(newRand(), 3)
	for _, o := range objects {
		server.RegisterObject(o)
	}
	fmt.Println("\nobject   estimate   truth")
	for _, o := range objects {
		est, err := plan.EstimateObject(client, disq.RefObject(o.ID))
		if err != nil {
			log.Fatal(err)
		}
		truth, _ := backend.Universe().Truth(o, "Protein")
		fmt.Printf("%6d %10.1f %7.1f\n", o.ID, est["Protein"], truth)
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
