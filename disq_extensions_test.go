package disq_test

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	disq "repro"
)

func TestFacadeQueryLayer(t *testing.T) {
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	st, err := disq.ParseQuery("SELECT Protein WHERE Has Meat > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := disq.Preprocess(platform, st.Query(), disq.Cents(4), disq.Dollars(25), disq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := disq.NewQueryEngine(platform, plan, st)
	if err != nil {
		t.Fatal(err)
	}
	objs := platform.Universe().NewObjects(rand.New(rand.NewSource(22)), 20)
	rows, err := engine.Execute(st, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || len(rows) == len(objs) {
		t.Fatalf("filter kept %d/%d", len(rows), len(objs))
	}
}

func TestFacadePlanPersistence(t *testing.T) {
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := disq.Preprocess(platform, disq.Query{Targets: []string{"Protein"}},
		disq.Cents(4), disq.Dollars(15), disq.Options{DisableDismantling: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := disq.LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Formula("Protein") != plan.Formula("Protein") {
		t.Fatal("plan changed across save/load")
	}
}

func TestFacadeRemotePlatform(t *testing.T) {
	backend, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	server := disq.NewCrowdServer(backend)
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	client := disq.NewCrowdClient(ts.URL, ts.Client())
	// Platform interface satisfied end to end.
	var _ disq.Platform = client
	ex, err := client.Examples([]string{"Protein"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Value(disq.RefObject(ex[0].Object.ID), "Calories", 2); err != nil {
		t.Fatal(err)
	}
	// nil http client works too.
	_ = disq.NewCrowdClient(ts.URL, (*http.Client)(nil))
}

func TestFacadeAdvisor(t *testing.T) {
	if testing.Short() {
		t.Skip("advisor runs multiple preprocessing phases")
	}
	seed := int64(25)
	factory := func() (disq.Platform, error) {
		seed++
		return disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: seed})
	}
	splits, err := disq.AdviseBudgetSplit(factory, disq.Query{Targets: []string{"Protein"}},
		disq.Dollars(50), 300, []float64{0.4, 0.6}, disq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) == 0 {
		t.Fatal("no splits")
	}
	if splits[0].Plan == nil {
		t.Fatal("nil plan in recommendation")
	}
}

func TestFacadeRecorderAndTrace(t *testing.T) {
	backend, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	rec := disq.NewRecorder(backend)
	var events int
	_, err = disq.Preprocess(rec, disq.Query{Targets: []string{"Protein"}},
		disq.Cents(2), disq.Dollars(12),
		disq.Options{Trace: func(disq.TraceEvent) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no trace events through the facade")
	}
	if rec.Table().Len() == 0 {
		t.Fatal("recorder captured nothing")
	}
}
