package disq_test

import (
	"math/rand"
	"strings"
	"testing"

	disq "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	platform, err := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := disq.Preprocess(platform,
		disq.Query{Targets: []string{"Protein"}},
		disq.Cents(4), disq.Dollars(20), disq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PerObjectCost() > disq.Cents(4) {
		t.Fatalf("per-object cost %v over budget", plan.PerObjectCost())
	}
	if !strings.Contains(plan.Formula("Protein"), "Protein* =") {
		t.Fatalf("formula: %q", plan.Formula("Protein"))
	}
	objs := platform.Universe().NewObjects(rand.New(rand.NewSource(2)), 3)
	ests, err := disq.EvaluateObjects(platform, plan, objs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("got %d estimates", len(ests))
	}
	for _, e := range ests {
		if _, ok := e["Protein"]; !ok {
			t.Fatal("missing Protein estimate")
		}
	}
}

func TestFacadeMoneyHelpers(t *testing.T) {
	if disq.Cents(1.5) != 15*disq.Mill {
		t.Fatal("Cents wrong")
	}
	if disq.Dollars(2) != 2*disq.Dollar {
		t.Fatal("Dollars wrong")
	}
	if disq.DefaultPricing().Dismantling != disq.Cents(1.5) {
		t.Fatal("DefaultPricing wrong")
	}
	l := disq.NewLedger(disq.Cents(1))
	if l.Limit() != disq.Cent {
		t.Fatal("NewLedger wrong")
	}
}

func TestFacadeUniverses(t *testing.T) {
	for _, u := range []*disq.Universe{disq.Pictures(), disq.Recipes(), disq.Houses(), disq.Laptops()} {
		if len(u.Attributes()) == 0 {
			t.Fatalf("universe %s empty", u.Name)
		}
	}
	u, err := disq.Synthetic(rand.New(rand.NewSource(1)), disq.SyntheticConfig{Attributes: 5, Factors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.Name != "synthetic" {
		t.Fatal("synthetic universe wrong")
	}
	// Custom universe through the facade.
	custom, err := disq.NewUniverse(disq.UniverseConfig{
		Name: "custom",
		Attributes: []disq.Attribute{
			{Name: "X", Sigma: 1, Noise: 0.5, Loadings: map[string]float64{"f": 0.8}},
			{Name: "Y", Sigma: 2, Noise: 0.5, Loadings: map[string]float64{"f": 0.6}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := custom.Correlation("X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if rho != 0.48 {
		t.Fatalf("custom correlation %v", rho)
	}
}

func TestFacadePolicyConstants(t *testing.T) {
	opts := disq.Options{Collection: disq.CollectFull, Estimation: disq.EstimateAverage}
	if opts.Collection.String() != "full" || opts.Estimation.String() != "average" {
		t.Fatal("policy constants not wired")
	}
	if disq.CollectSelective.String() != "selective" || disq.CollectOneConnection.String() != "one-connection" {
		t.Fatal("collection constants wrong")
	}
	if disq.EstimateGraph.String() != "graph" {
		t.Fatal("estimation constant wrong")
	}
}
