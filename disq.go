// Package disq is the public API of this repository's reproduction of
// "Dismantling Complicated Query Attributes with Crowd" (Laadan & Milo,
// EDBT 2015).
//
// DisQ evaluates queries whose attributes are missing from the database
// and hard for crowd workers to estimate directly. Given an offline
// preprocessing budget it uses the crowd itself — no domain expert — to
// dismantle the query attributes into finer related ones, gathers
// statistics about them, and derives (1) a per-object budget distribution
// b over attributes and (2) a linear formula per query attribute. The
// online phase then evaluates each object with at most the per-object
// budget:
//
//	o.a* = Σ l(a_i)·o.a_i^(b(a_i))    (o.a^(n) = mean of n worker answers)
//
// Quickstart against the built-in simulated crowd:
//
//	platform, _ := disq.NewSimPlatform(disq.Recipes(), disq.SimOptions{Seed: 1})
//	plan, _ := disq.Preprocess(platform,
//		disq.Query{Targets: []string{"Protein"}},
//		disq.Cents(4),    // online budget per object
//		disq.Dollars(25), // offline preprocessing budget
//		disq.Options{})
//	fmt.Println(plan.Formula("Protein"))
//	estimates, _ := plan.EstimateObject(platform, someObject)
//
// The subpackages are internal; everything a downstream user needs is
// re-exported here. See DESIGN.md for the architecture and EXPERIMENTS.md
// for the reproduced evaluation.
package disq

import (
	"math/rand"
	"net/http"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/crowdhttp"
	"repro/internal/domain"
	"repro/internal/query"
)

// Core algorithm types.
type (
	// Query names the attributes to evaluate, with optional error weights
	// (nil = the paper's ω_t = 1/Var(O.a_t)).
	Query = core.Query
	// Options tunes the DisQ pipeline; the zero value is the paper's
	// configuration (K=2, N1=200, ρ-prior 0.5, selective collection,
	// graph estimation).
	Options = core.Options
	// Plan is the preprocessing output: budget distribution, regressions,
	// discovered attributes.
	Plan = core.Plan
	// Regression is one learned linear formula.
	Regression = core.Regression
	// Assignment is the per-object budget distribution b.
	Assignment = core.Assignment
	// Statistics is the estimated (S_o, S_a, S_c) trio.
	Statistics = core.Statistics
	// TraceEvent is one preprocessing decision (set Options.Trace to
	// receive them).
	TraceEvent = core.TraceEvent
	// PhaseStats profiles one preprocessing phase (wall time, questions,
	// cost); delivered on TracePhase events.
	PhaseStats = core.PhaseStats
)

// TracePhase marks the per-phase profile events Preprocess emits at the
// end of a run (one per phase: collect, dismantle, verify, optimize,
// train; see PhaseStats).
const TracePhase = core.TracePhase

// Collection and estimation policies for multi-attribute queries
// (Section 4 of the paper).
const (
	CollectSelective     = core.CollectSelective
	CollectFull          = core.CollectFull
	CollectOneConnection = core.CollectOneConnection
	EstimateGraph        = core.EstimateGraph
	EstimateAverage      = core.EstimateAverage
)

// Crowd platform types.
type (
	// Platform is the crowd access layer (value, dismantling,
	// verification and example questions, pricing, budget ledger).
	Platform = crowd.Platform
	// SimPlatform is the deterministic simulated crowd.
	SimPlatform = crowd.SimPlatform
	// SimOptions configures the simulator (seed, spam, pricing,
	// unification, junk-answer rate).
	SimOptions = crowd.SimOptions
	// Pricing is the per-question-type payment scheme.
	Pricing = crowd.Pricing
	// Ledger tracks crowd spending against a limit.
	Ledger = crowd.Ledger
	// Cost is a monetary amount in mills (tenths of a cent).
	Cost = crowd.Cost
	// Example is an example-question result (object + true values).
	Example = crowd.Example
	// Recorder wraps a Platform and records all answers into a data table
	// (the paper's recorded-answer methodology).
	Recorder = crowd.Recorder
	// ValueQuestion is one (attribute, answer count) pair of an object's
	// online evaluation; Plan.Questions enumerates them.
	ValueQuestion = crowd.ValueQuestion
	// ValueBatcher is the optional Platform extension for answering all of
	// an object's value questions in one round trip; the online evaluator
	// uses it automatically when present.
	ValueBatcher = crowd.ValueBatcher
)

// NewBatchedPlatform adapts a platform's batching: size > 0 chunks value
// batches to at most size questions, size < 0 disables batching entirely
// (the unbatched control for benchmarks), size 0 returns p unchanged.
// Answers are byte-identical in every mode.
func NewBatchedPlatform(p Platform, size int) Platform { return crowd.NewBatched(p, size) }

// NewRecorder wraps a platform with answer recording.
func NewRecorder(p Platform) *Recorder { return crowd.NewRecorder(p) }

// DetailedAnswer is one worker answer with its worker identity (a
// SimPlatform capability used by the quality layer).
type DetailedAnswer = crowd.DetailedAnswer

// Money denominations.
const (
	Mill   = crowd.Mill
	Cent   = crowd.Cent
	Dollar = crowd.Dollar
)

// Domain model types.
type (
	// Universe is a generative object domain with ground truth.
	Universe = domain.Universe
	// Object is one object of a universe.
	Object = domain.Object
	// Attribute describes one attribute of a universe.
	Attribute = domain.Attribute
	// SyntheticConfig parameterizes the synthetic domain generator.
	SyntheticConfig = domain.SyntheticConfig
	// UniverseConfig assembles a custom universe.
	UniverseConfig = domain.Config
	// DismantleAnswer is one entry of a dismantling-answer distribution.
	DismantleAnswer = domain.DismantleAnswer
)

// Cents builds a Cost from (possibly fractional) cents.
func Cents(c float64) Cost { return crowd.Cents(c) }

// Dollars builds a Cost from dollars.
func Dollars(d float64) Cost { return crowd.Dollars(d) }

// DefaultPricing is the paper's Section 5.1 payment scheme.
func DefaultPricing() Pricing { return crowd.DefaultPricing() }

// NewLedger returns a budget ledger with the given limit (0 = unlimited).
func NewLedger(limit Cost) *Ledger { return crowd.NewLedger(limit) }

// NewSimPlatform builds the simulated crowd over a universe.
func NewSimPlatform(u *Universe, opts SimOptions) (*SimPlatform, error) {
	return crowd.NewSim(u, opts)
}

// NewUniverse assembles a custom universe from a configuration.
func NewUniverse(cfg UniverseConfig) (*Universe, error) { return domain.New(cfg) }

// Built-in domains of the paper's evaluation.
func Pictures() *Universe { return domain.Pictures() }

// Recipes is the allrecipes.com-style domain.
func Recipes() *Universe { return domain.Recipes() }

// Houses is the hedonic house-prices domain (coverage experiment).
func Houses() *Universe { return domain.Houses() }

// Laptops is the hedonic laptop-prices domain (coverage experiment).
func Laptops() *Universe { return domain.Laptops() }

// Synthetic generates a random universe (Section 5.1, "Synthetic Data").
func Synthetic(rng *rand.Rand, cfg SyntheticConfig) (*Universe, error) {
	return domain.Synthetic(rng, cfg)
}

// Preprocess runs DisQ's offline phase (Algorithm 1 + the Section 4
// multi-target extension): spend at most preprocessBudget on the platform
// to derive a Plan whose online evaluation costs at most perObjectBudget
// per object.
func Preprocess(p Platform, q Query, perObjectBudget, preprocessBudget Cost, opts Options) (*Plan, error) {
	return core.Preprocess(p, q, perObjectBudget, preprocessBudget, opts)
}

// EvaluateObjects runs the online phase of a plan over a set of objects,
// returning one estimate map (target → value) per object.
func EvaluateObjects(p Platform, plan *Plan, objects []*Object) ([]map[string]float64, error) {
	out := make([]map[string]float64, len(objects))
	for i, o := range objects {
		est, err := plan.EstimateObject(p, o)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// EvaluateBatch is EvaluateObjects with bounded concurrency — the
// throughput shape of a real deployment, where each object's questions
// wait on crowd latency. Results are in input order.
func EvaluateBatch(p Platform, plan *Plan, objects []*Object, parallelism int) ([]map[string]float64, error) {
	return core.EvaluateBatch(p, plan, objects, parallelism)
}

// LoadPlan reads a plan previously stored with Plan.Save, so an expensive
// preprocessing phase can be amortized across sessions.
func LoadPlan(path string) (*Plan, error) { return core.LoadPlan(path) }

// SplitOption is one explored division of a total budget between the
// offline and online phases.
type SplitOption = core.SplitOption

// AdviseBudgetSplit explores how to divide a total budget between
// preprocessing and per-object spending for a workload of `objects`
// objects — the open question of the paper's Section 7. See
// core.AdviseBudgetSplit for the factory semantics.
func AdviseBudgetSplit(factory func() (Platform, error), q Query, total Cost, objects int, fractions []float64, opts Options) ([]SplitOption, error) {
	return core.AdviseBudgetSplit(func() (crowd.Platform, error) { return factory() },
		q, total, objects, fractions, opts)
}

// Query-evaluation layer (SELECT ... WHERE ... over crowd-estimated
// attributes; see internal/query).
type (
	// Statement is a parsed SELECT/WHERE query.
	Statement = query.Statement
	// Condition is one WHERE comparison.
	Condition = query.Condition
	// QueryEngine executes statements with a preprocessed plan.
	QueryEngine = query.Engine
	// ResultRow is one object passing the filter, with selected values.
	ResultRow = query.ResultRow
)

// ParseQuery parses "SELECT a, b WHERE c > 1 AND d <= 0.5".
func ParseQuery(s string) (*Statement, error) { return query.Parse(s) }

// NewQueryEngine validates that the plan covers the statement and returns
// an executor.
func NewQueryEngine(p Platform, plan *Plan, st *Statement) (*QueryEngine, error) {
	return query.NewEngine(p, plan, st)
}

// Remote crowd platform (HTTP adapter; see internal/crowdhttp).
type (
	// CrowdServer exposes a Platform over HTTP, with idempotent replay of
	// retried requests and optional fault injection.
	CrowdServer = crowdhttp.Server
	// CrowdClient implements Platform against a CrowdServer, with local
	// transactional budgeting, answer caching and a retrying transport.
	CrowdClient = crowdhttp.Client
	// CrowdClientOptions tunes the client's retry/timeout transport.
	CrowdClientOptions = crowdhttp.Options
	// CrowdFaultOptions configures request-level fault injection on a
	// CrowdServer (503s, dropped responses, latency, fail-after-N).
	CrowdFaultOptions = crowdhttp.FaultOptions
	// TransportStats are a CrowdClient's transport counters (requests,
	// retries, batches, coalesced flushes) — the observability hooks the
	// round-trip benchmarks assert against.
	TransportStats = crowdhttp.TransportStats
	// ServerStats are a CrowdServer's counters, also served at /v1/stats.
	ServerStats = crowdhttp.ServerStats
)

// NewCrowdServer wraps a platform for serving; mount Handler() on an
// http.Server.
func NewCrowdServer(p Platform) *CrowdServer { return crowdhttp.NewServer(p) }

// NewFaultyCrowdServer is NewCrowdServer plus seeded request-level fault
// injection, for rehearsing deployments against a flaky crowd service.
func NewFaultyCrowdServer(p Platform, f CrowdFaultOptions) *CrowdServer {
	return crowdhttp.NewFaultyServer(p, f)
}

// NewCrowdClient returns a Platform speaking to a CrowdServer at baseURL
// (nil httpClient = http.DefaultClient) with default transport options.
func NewCrowdClient(baseURL string, httpClient *http.Client) *CrowdClient {
	return crowdhttp.NewClient(baseURL, httpClient)
}

// NewCrowdClientWithOptions is NewCrowdClient with explicit retry/timeout
// options.
func NewCrowdClientWithOptions(baseURL string, httpClient *http.Client, opts CrowdClientOptions) *CrowdClient {
	return crowdhttp.NewClientWithOptions(baseURL, httpClient, opts)
}

// Fault injection on any Platform (see internal/crowd).
type (
	// FaultyPlatform injects seeded transient errors, latency and short
	// batches into a Platform.
	FaultyPlatform = crowd.FaultyPlatform
	// FaultyOptions configures FaultyPlatform.
	FaultyOptions = crowd.FaultyOptions
	// RetryPlatform recovers from transient platform failures in-process.
	RetryPlatform = crowd.RetryPlatform
	// RetryOptions configures RetryPlatform.
	RetryOptions = crowd.RetryOptions
	// FaultStats counts injected faults and retry recoveries.
	FaultStats = crowd.FaultStats
)

// ErrTransientCrowd marks transient (retryable) platform failures.
var ErrTransientCrowd = crowd.ErrTransient

// NewFaultyPlatform wraps a platform with seeded fault injection.
func NewFaultyPlatform(p Platform, opts FaultyOptions) *FaultyPlatform {
	return crowd.NewFaulty(p, opts)
}

// NewRetryPlatform wraps a platform with transparent retries of transient
// failures.
func NewRetryPlatform(p Platform, opts RetryOptions) *RetryPlatform {
	return crowd.NewRetry(p, opts)
}

// RefObject returns a reference-only object for addressing server-side
// objects by id through a CrowdClient.
func RefObject(id int) *Object { return domain.RefObject(id) }

// Adaptive online budgets (sequential stopping, reliability weighting,
// bandit reallocation; see internal/adaptive and DESIGN.md §9).
type (
	// AdaptiveConfig tunes the adaptive online evaluator.
	AdaptiveConfig = adaptive.Config
	// AdaptiveEvaluator evaluates plan objects with adaptive per-object
	// spend; with stopping disabled it replays the fixed path bit-for-bit.
	AdaptiveEvaluator = adaptive.Evaluator
	// AdaptiveStats counts an evaluator's asked/saved/boosted questions.
	AdaptiveStats = adaptive.Stats
)

// AdaptiveDefaults is the everything-on adaptive tuning.
func AdaptiveDefaults() AdaptiveConfig { return adaptive.Defaults() }

// AdaptiveDisabled is the determinism-pinned tuning: the evaluator
// replays the fixed-budget path exactly.
func AdaptiveDisabled() AdaptiveConfig { return adaptive.Disabled() }

// NewAdaptiveEvaluator builds an adaptive evaluator over a preprocessed
// plan. Call Calibrate before Estimate to enable reliability weighting
// on platforms that report worker identities.
func NewAdaptiveEvaluator(p Platform, plan *Plan, cfg AdaptiveConfig) (*AdaptiveEvaluator, error) {
	return adaptive.New(p, plan, cfg)
}
